//! The staged attack-session API: typed, serializable pipeline stages.
//!
//! [`crate::score_design`]/[`crate::attack`] run the whole MuxLink
//! pipeline in one call. An [`AttackSession`] exposes the same pipeline
//! as **explicit, resumable transitions between owned stage artifacts**:
//!
//! ```text
//! AttackSession ──extract()──▶ Extracted ──prepare()──▶ Prepared
//!        ──train()──▶ Trained ──score()──▶ ScoredDesign ──recover_key(th)──▶ key
//! ```
//!
//! Every artifact is serde-serializable, so any stage can be
//! checkpointed and restored: save a [`Trained`] model after the
//! expensive training stage, then re-score or threshold-sweep later —
//! in another process — without retraining. A [`Progress`] observer
//! receives stage transitions and per-epoch statistics and can cancel
//! cooperatively at batch boundaries.
//!
//! # Determinism contract
//!
//! The staged path is **bit-identical** to the one-shot
//! [`crate::score_design`] for any thread count (the one-shot entry
//! points are thin wrappers over a session). Every stage seeds its own
//! RNG streams from [`MuxLinkConfig::seed`] and reduces parallel work in
//! a fixed order, so splitting the pipeline at any stage boundary —
//! including through a serialize/deserialize round trip — cannot change
//! a single bit of the scores or the recovered key.
//!
//! # Example
//!
//! ```no_run
//! use muxlink_core::{AttackSession, MuxLinkConfig, NoProgress};
//! use muxlink_locking::{dmux, LockOptions};
//!
//! let design = muxlink_benchgen::synth::SynthConfig::new("d", 16, 8, 260).generate(11);
//! let locked = dmux::lock(&design, &LockOptions::new(8, 3)).unwrap();
//!
//! let session = AttackSession::new(
//!     &locked.netlist,
//!     &locked.key_input_names(),
//!     MuxLinkConfig::quick(),
//! );
//! let trained = session
//!     .extract().unwrap()
//!     .prepare(&NoProgress).unwrap()
//!     .train(&NoProgress).unwrap();
//!
//! // Checkpoint the 16-second training stage …
//! let checkpoint = serde_json::to_string(&trained).unwrap();
//! // … and much later, re-score + threshold-sweep without retraining:
//! let restored: muxlink_core::Trained = serde_json::from_str(&checkpoint).unwrap();
//! let scored = restored.score(&NoProgress).unwrap();
//! for th in [0.0, 0.01, 0.1] {
//!     println!("th={th}: {:?}", scored.recover_key(th));
//! }
//! ```

use std::time::Instant;

use muxlink_gnn::{
    train_controlled_timed, ArenaSamples, Dgcnn, DgcnnConfig, TrainConfig, TrainPhases, TrainReport,
};
use muxlink_graph::dataset::{build_dataset_arena, ArenaDataset, DatasetConfig};
use muxlink_graph::{extract, ExtractedDesign};
use muxlink_netlist::Netlist;
use serde::{Deserialize, Serialize};

use crate::fingerprint::DesignFingerprint;
use crate::pipeline::ScoredDesign;
use crate::progress::{Progress, Stage, TrainBridge};
use crate::report::{StageThreads, Timings};
use crate::scoring::{choose_k, score_muxes_controlled};
use crate::{AttackError, MuxLinkConfig};

/// Seed whitening for the model-initialisation stream (kept identical to
/// the original one-shot pipeline so staged runs reproduce its bits).
const MODEL_SEED_XOR: u64 = 0xD6C4_33B9;
/// Seed whitening for the training (shuffle/dropout) stream.
const TRAIN_SEED_XOR: u64 = 0x5851_F42D;

/// Runs `f` on a dedicated pool of `threads` workers (ambient pool when
/// `threads == 0`), handing it the effective worker count.
fn with_pool<R: Send>(threads: usize, f: impl FnOnce(usize) -> R + Send) -> Result<R, AttackError> {
    if threads == 0 {
        return Ok(f(rayon::current_num_threads()));
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| AttackError::ThreadPool(e.to_string()))?;
    let n = pool.current_num_threads();
    Ok(pool.install(|| f(n)))
}

/// Applies the cleanup pass pipeline to a copy of `netlist` when
/// `cfg.canonicalize` is set; `None` means "extract the original as-is".
/// Shared by [`AttackSession::extract`] and [`Trained::verify_design`] so
/// a checkpoint produced under `canonicalize` verifies against the same
/// raw netlist it was trained from.
fn canonical_target(
    netlist: &Netlist,
    cfg: &MuxLinkConfig,
) -> Result<Option<Netlist>, AttackError> {
    if !cfg.canonicalize {
        return Ok(None);
    }
    let mut cleaned = netlist.clone();
    muxlink_netlist::passes::Pipeline::cleanup()
        .run(&mut cleaned)
        .map_err(|e| {
            AttackError::InvalidConfig(format!(
                "canonicalize: cleanup pipeline rejected the netlist: {e}"
            ))
        })?;
    Ok(Some(cleaned))
}

/// Rejects configurations that would otherwise panic deep inside the
/// pipeline (typed errors beat asserts on the hot path).
fn validate_config(cfg: &MuxLinkConfig) -> Result<(), AttackError> {
    if cfg.batch_size == 0 {
        return Err(AttackError::InvalidConfig(
            "batch_size must be at least 1".into(),
        ));
    }
    if cfg.epochs == 0 {
        return Err(AttackError::InvalidConfig(
            "epochs must be at least 1".into(),
        ));
    }
    if !(0.0..1.0).contains(&cfg.val_fraction) {
        return Err(AttackError::InvalidConfig(format!(
            "val_fraction must be in [0, 1), got {}",
            cfg.val_fraction
        )));
    }
    if !(cfg.k_percentile > 0.0 && cfg.k_percentile <= 1.0) {
        return Err(AttackError::InvalidConfig(format!(
            "k_percentile must be in (0, 1], got {}",
            cfg.k_percentile
        )));
    }
    if !(cfg.dh_keep > 0.0 && cfg.dh_keep <= 1.0) {
        return Err(AttackError::InvalidConfig(format!(
            "dh_keep must be in (0, 1], got {}",
            cfg.dh_keep
        )));
    }
    Ok(())
}

/// The dataset configuration a session derives from its attack config —
/// shared by the prepare and score stages so both always agree.
fn dataset_config(cfg: &MuxLinkConfig) -> DatasetConfig {
    DatasetConfig {
        h: cfg.h,
        max_train_links: cfg.max_train_links,
        val_fraction: cfg.val_fraction,
        max_subgraph_nodes: cfg.max_subgraph_nodes,
        seed: cfg.seed,
        chunk: cfg.sample_chunk,
    }
}

/// Entry point of the staged API: borrows the locked netlist, owns the
/// configuration, and produces the first stage artifact via
/// [`AttackSession::extract`] (or the whole chain via
/// [`AttackSession::run`]).
#[derive(Debug, Clone)]
pub struct AttackSession<'n> {
    netlist: &'n Netlist,
    key_input_names: Vec<String>,
    cfg: MuxLinkConfig,
}

impl<'n> AttackSession<'n> {
    /// Builds a session over a locked netlist and its key-input names.
    #[must_use]
    pub fn new(netlist: &'n Netlist, key_input_names: &[String], cfg: MuxLinkConfig) -> Self {
        Self {
            netlist,
            key_input_names: key_input_names.to_vec(),
            cfg,
        }
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &MuxLinkConfig {
        &self.cfg
    }

    /// Stage 1: netlist → gate graph + MUX candidates (sequential; the
    /// cheap stage).
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidConfig`] for unusable settings,
    /// [`AttackError::Extract`] for malformed locked designs and
    /// [`AttackError::NoKeyMuxes`] when there is nothing to attack.
    pub fn extract(&self) -> Result<Extracted, AttackError> {
        validate_config(&self.cfg)?;
        let t0 = Instant::now();
        let cleaned = canonical_target(self.netlist, &self.cfg)?;
        let design = extract(
            cleaned.as_ref().unwrap_or(self.netlist),
            &self.key_input_names,
        )?;
        if design.muxes.is_empty() {
            return Err(AttackError::NoKeyMuxes);
        }
        let timings = Timings {
            extract: t0.elapsed(),
            threads: StageThreads {
                extract: 1,
                ..StageThreads::default()
            },
            ..Timings::default()
        };
        Ok(Extracted {
            cfg: self.cfg.clone(),
            key_input_names: self.key_input_names.clone(),
            design,
            timings,
        })
    }

    /// Runs the full chain `extract → prepare → train → score` under one
    /// observer — exactly what [`crate::score_design`] wraps.
    ///
    /// With `cfg.threads != 0` one dedicated pool serves the whole
    /// chain (stage methods called individually each build their own);
    /// the results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Any stage error; see the individual stage methods.
    pub fn run(&self, progress: &dyn Progress) -> Result<ScoredDesign, AttackError> {
        let chain = |session: &AttackSession<'_>| -> Result<ScoredDesign, AttackError> {
            progress.stage_started(Stage::Extract);
            let extracted = session.extract()?;
            progress.stage_finished(Stage::Extract, extracted.timings.extract);
            extracted
                .prepare(progress)?
                .train(progress)?
                .score(progress)
        };
        if self.cfg.threads == 0 {
            return chain(self);
        }
        // One pool around the whole chain; the stages see threads == 0
        // and use it as the ambient pool. Worker counts — and therefore
        // all recorded StageThreads — match the per-stage-pool path.
        let threads = self.cfg.threads;
        let inner = AttackSession {
            netlist: self.netlist,
            key_input_names: self.key_input_names.clone(),
            cfg: MuxLinkConfig {
                threads: 0,
                ..self.cfg.clone()
            },
        };
        with_pool(threads, move |_| chain(&inner))?
    }
}

/// Stage artifact: the extracted gate graph and MUX candidates, plus the
/// configuration the rest of the pipeline will run with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Extracted {
    /// The attack configuration this session runs with.
    pub cfg: MuxLinkConfig,
    /// Key-input names, in key-bit order (fixes `key_len`).
    pub key_input_names: Vec<String>,
    /// The extracted graph and MUX candidates.
    pub design: ExtractedDesign,
    /// Wall-clock of the stages run so far.
    pub timings: Timings,
}

impl Extracted {
    /// Stage 2: self-supervised dataset build (sampled observed /
    /// unobserved wires → enclosing subgraphs, streamed
    /// `cfg.sample_chunk` links at a time into one pooled
    /// [`SampleArena`](muxlink_graph::SampleArena)) and SortPool-`k`
    /// selection.
    ///
    /// Runs on a dedicated pool of `cfg.threads` workers (0 = ambient);
    /// the result is bit-identical for any thread count and any chunk
    /// size.
    ///
    /// # Errors
    ///
    /// [`AttackError::EmptyDataset`] when no links could be sampled,
    /// [`AttackError::Cancelled`] when `progress` requested a stop,
    /// [`AttackError::ThreadPool`] when the pool could not be built.
    pub fn prepare(self, progress: &dyn Progress) -> Result<Prepared, AttackError> {
        if progress.cancelled() {
            return Err(AttackError::Cancelled);
        }
        progress.stage_started(Stage::Prepare);
        let t0 = Instant::now();
        let Self {
            cfg,
            key_input_names,
            design,
            mut timings,
        } = self;
        let ds_cfg = dataset_config(&cfg);
        let (dataset, k, workers) = with_pool(cfg.threads, |workers| {
            let targets = design.target_links();
            let dataset = build_dataset_arena(&design.graph, &targets, &ds_cfg);
            if dataset.train.is_empty() {
                return Err(AttackError::EmptyDataset);
            }
            let sizes: Vec<usize> = dataset
                .train
                .iter()
                .chain(&dataset.val)
                .map(|&h| dataset.arena.node_count(h))
                .collect();
            // SortPool size: `k_percentile` of the training subgraphs
            // fit into `k`, clamped to the architecture's minimum.
            let input_dim = muxlink_graph::features::feature_cols(dataset.max_label);
            let model_cfg = DgcnnConfig::paper(input_dim, 10);
            let k = choose_k(&sizes, cfg.k_percentile, model_cfg.min_k());
            Ok((dataset, k, workers))
        })??;
        timings.dataset = t0.elapsed();
        timings.threads.dataset = workers;
        progress.stage_finished(Stage::Prepare, timings.dataset);
        Ok(Prepared {
            cfg,
            key_input_names,
            design,
            dataset,
            k,
            timings,
        })
    }
}

/// Stage artifact: the labelled training/validation dataset — pooled in
/// one [`SampleArena`](muxlink_graph::SampleArena), samples addressed by
/// handles — and the chosen SortPool size, ready for (re-)training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prepared {
    /// The attack configuration this session runs with.
    pub cfg: MuxLinkConfig,
    /// Key-input names, in key-bit order.
    pub key_input_names: Vec<String>,
    /// The extracted graph and MUX candidates.
    pub design: ExtractedDesign,
    /// Arena-pooled training/validation samples (compact two-hot
    /// features; `dataset.max_label` fixes the feature width).
    pub dataset: ArenaDataset,
    /// Chosen SortPooling size.
    pub k: usize,
    /// Wall-clock of the stages run so far.
    pub timings: Timings,
}

impl Prepared {
    /// Stage 3: DGCNN training with best-on-validation selection.
    ///
    /// `progress` receives one [`Progress::epoch_finished`] call per
    /// epoch and is polled for cancellation at every batch boundary.
    /// Runs on a dedicated pool of `cfg.threads` workers (0 = ambient);
    /// bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// [`AttackError::Cancelled`] on cooperative stop,
    /// [`AttackError::ThreadPool`] when the pool could not be built.
    pub fn train(self, progress: &dyn Progress) -> Result<Trained, AttackError> {
        if progress.cancelled() {
            return Err(AttackError::Cancelled);
        }
        progress.stage_started(Stage::Train);
        let t0 = Instant::now();
        let Self {
            cfg,
            key_input_names,
            design,
            mut dataset,
            k,
            mut timings,
        } = self;
        let max_label = dataset.max_label;
        // Cached layer-0 plans are derived state the arena's serde
        // deliberately skips, so a checkpoint-restored `Prepared` arrives
        // without them: (re)build here — a no-op when the dataset build
        // already cached them under this budget.
        if !cfg.layer0_rebuild {
            dataset.arena.build_layer0_plans(max_label);
        }
        let input_dim = muxlink_graph::features::feature_cols(max_label);
        let mut model_cfg = DgcnnConfig::paper(input_dim, 10);
        model_cfg.k = k;
        model_cfg.seed = cfg.seed ^ MODEL_SEED_XOR;
        let train_cfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            adam: muxlink_gnn::AdamConfig {
                lr: cfg.learning_rate,
                ..muxlink_gnn::AdamConfig::default()
            },
            seed: cfg.seed ^ TRAIN_SEED_XOR,
            reference_loop: cfg.reference_trainer,
            dh_keep: cfg.dh_keep,
            layer0_rebuild: cfg.layer0_rebuild,
        };
        let (outcome, workers) = with_pool(cfg.threads, |workers| {
            let mut model = Dgcnn::new(model_cfg);
            // The trainer reads samples straight out of the arena slabs
            // through handle views — bit-identical to owning per-sample
            // `Vec`s (property-tested at 1 and 4 threads).
            let train_set = ArenaSamples::select(&dataset.arena, &dataset.train, max_label);
            let val_set = ArenaSamples::select(&dataset.arena, &dataset.val, max_label);
            let mut phases = TrainPhases::default();
            let r = train_controlled_timed(
                &mut model,
                &train_set,
                &val_set,
                &train_cfg,
                &TrainBridge(progress),
                &mut phases,
            );
            (r.map(|report| (model, report, phases)), workers)
        })?;
        let (model, report, phases) = outcome.map_err(|_| AttackError::Cancelled)?;
        timings.train = t0.elapsed();
        timings.threads.train = workers;
        timings.train_phases = phases;
        progress.stage_finished(Stage::Train, timings.train);
        Ok(Trained {
            cfg,
            key_input_names,
            design,
            max_label,
            k,
            model,
            report,
            timings,
        })
    }
}

/// Stage artifact: the trained DGCNN with everything needed to score —
/// **the checkpoint type**. Serialize it after the expensive training
/// stage; a reload scores and threshold-sweeps without retraining, with
/// bit-identical results.
///
/// The (large, training-only) dataset is deliberately dropped at this
/// boundary, so checkpoints stay proportional to the model plus the
/// extracted graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trained {
    /// The attack configuration this session ran with.
    pub cfg: MuxLinkConfig,
    /// Key-input names, in key-bit order.
    pub key_input_names: Vec<String>,
    /// The extracted graph and MUX candidates.
    pub design: ExtractedDesign,
    /// Largest DRNL label of the training dataset (fixes feature width).
    pub max_label: u32,
    /// Chosen SortPooling size.
    pub k: usize,
    /// The trained model (weights + Adam state + architecture).
    pub model: Dgcnn,
    /// Training statistics.
    pub report: TrainReport,
    /// Wall-clock of the stages run so far.
    pub timings: Timings,
}

impl Trained {
    /// The structural [`DesignFingerprint`] of the design this
    /// checkpoint was trained on — the digest of exactly what
    /// [`Trained::verify_design`] compares (key-input names in key-bit
    /// order plus the key-MUX structure). The attack service keys its
    /// checkpoint cache by this value, and the wire protocol carries it
    /// in hex form.
    #[must_use]
    pub fn fingerprint(&self) -> DesignFingerprint {
        DesignFingerprint::compute(&self.key_input_names, &self.design.muxes)
    }

    /// Checks that this checkpoint was trained on `netlist`: the
    /// key-input names must match and re-extracting the netlist must
    /// yield the identical key-MUX structure (gate ids, key bits, sink
    /// and candidate-source nodes — the [`Trained::fingerprint`] of the
    /// locked design; extraction is deterministic, so the same design
    /// always matches).
    ///
    /// Use this before attributing a [`Trained::score`] result to a
    /// netlist that did not produce the checkpoint in-process: scoring
    /// always runs on the *embedded* extracted design.
    ///
    /// # Errors
    ///
    /// [`AttackError::Extract`] when `netlist` cannot be extracted and
    /// [`AttackError::Checkpoint`] when it does not match.
    pub fn verify_design(
        &self,
        netlist: &Netlist,
        key_input_names: &[String],
    ) -> Result<(), AttackError> {
        if self.key_input_names != key_input_names {
            return Err(AttackError::Checkpoint(
                "checkpoint was trained with different key inputs".into(),
            ));
        }
        let cleaned = canonical_target(netlist, &self.cfg)?;
        let design = extract(cleaned.as_ref().unwrap_or(netlist), key_input_names)?;
        // The digest and the structural comparison are pure functions of
        // the same inputs, so they agree everywhere except on a digest
        // collision — keeping the structural check as a backstop makes
        // acceptance behaviour bit-identical to the pre-fingerprint
        // implementation while the digest stays the shared cache/wire
        // identity.
        let incoming = DesignFingerprint::compute(key_input_names, &design.muxes);
        if incoming != self.fingerprint() || design.muxes != self.design.muxes {
            return Err(AttackError::Checkpoint(
                "checkpoint was trained on a different design (key-MUX structure differs)".into(),
            ));
        }
        Ok(())
    }

    /// Stage 4: scores both candidate links of every key MUX.
    ///
    /// Takes `&self` so one checkpoint can be scored repeatedly (for
    /// example after editing `cfg.th` — scoring itself is
    /// threshold-free). Runs on a dedicated pool of `cfg.threads`
    /// workers (0 = ambient); bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// [`AttackError::Cancelled`] on cooperative stop,
    /// [`AttackError::ThreadPool`] when the pool could not be built.
    pub fn score(&self, progress: &dyn Progress) -> Result<ScoredDesign, AttackError> {
        if progress.cancelled() {
            return Err(AttackError::Cancelled);
        }
        progress.stage_started(Stage::Score);
        let t0 = Instant::now();
        let ds_cfg = dataset_config(&self.cfg);
        let (scores, workers) = with_pool(self.cfg.threads, |workers| {
            (
                score_muxes_controlled(
                    &self.model,
                    &self.design,
                    &ds_cfg,
                    self.max_label,
                    progress,
                ),
                workers,
            )
        })?;
        let scores = scores?;
        let mut timings = self.timings;
        timings.score = t0.elapsed();
        timings.threads.score = workers;
        progress.stage_finished(Stage::Score, timings.score);
        Ok(ScoredDesign {
            extracted: self.design.clone(),
            scores,
            key_len: self.key_input_names.len(),
            train_report: self.report.clone(),
            k: self.k,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::score_design;
    use crate::progress::{CancelFlag, NoProgress};
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, LockOptions};

    fn locked_design() -> muxlink_locking::LockedNetlist {
        let design = SynthConfig::new("s", 14, 6, 200).generate(31);
        dmux::lock(&design, &LockOptions::new(6, 3)).unwrap()
    }

    #[test]
    fn staged_chain_matches_one_shot_bitwise() {
        let locked = locked_design();
        let names = locked.key_input_names();
        let cfg = MuxLinkConfig::quick();
        let one_shot = score_design(&locked.netlist, &names, &cfg).unwrap();
        let staged = AttackSession::new(&locked.netlist, &names, cfg.clone())
            .extract()
            .unwrap()
            .prepare(&NoProgress)
            .unwrap()
            .train(&NoProgress)
            .unwrap()
            .score(&NoProgress)
            .unwrap();
        assert_eq!(staged.scores, one_shot.scores);
        assert_eq!(staged.train_report, one_shot.train_report);
        assert_eq!(staged.k, one_shot.k);
        assert_eq!(staged.recover_key(cfg.th), one_shot.recover_key(cfg.th));
    }

    #[test]
    fn observer_sees_stages_and_epochs_without_perturbing_results() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Spy {
            stages: AtomicUsize,
            epochs: AtomicUsize,
        }
        impl Progress for Spy {
            fn stage_started(&self, _stage: Stage) {
                self.stages.fetch_add(1, Ordering::SeqCst);
            }
            fn epoch_finished(&self, _stats: &muxlink_gnn::EpochStats) {
                self.epochs.fetch_add(1, Ordering::SeqCst);
            }
        }
        let locked = locked_design();
        let names = locked.key_input_names();
        let cfg = MuxLinkConfig::quick();
        let spy = Spy::default();
        let observed = AttackSession::new(&locked.netlist, &names, cfg.clone())
            .run(&spy)
            .unwrap();
        let silent = score_design(&locked.netlist, &names, &cfg).unwrap();
        assert_eq!(
            spy.stages.load(Ordering::SeqCst),
            4,
            "extract/prepare/train/score"
        );
        assert_eq!(spy.epochs.load(Ordering::SeqCst), cfg.epochs);
        assert_eq!(observed.scores, silent.scores);
        assert_eq!(observed.train_report, silent.train_report);
    }

    #[test]
    fn cancellation_surfaces_as_typed_error_at_every_stage() {
        let locked = locked_design();
        let names = locked.key_input_names();
        let cfg = MuxLinkConfig::quick();
        let flag = CancelFlag::new();
        flag.cancel();
        let extracted = AttackSession::new(&locked.netlist, &names, cfg)
            .extract()
            .unwrap();
        assert!(matches!(
            extracted.clone().prepare(&flag),
            Err(AttackError::Cancelled)
        ));
        let prepared = extracted.prepare(&NoProgress).unwrap();
        assert!(matches!(
            prepared.clone().train(&flag),
            Err(AttackError::Cancelled)
        ));
        let trained = prepared.train(&NoProgress).unwrap();
        assert!(matches!(trained.score(&flag), Err(AttackError::Cancelled)));
    }

    #[test]
    fn invalid_configs_are_rejected_before_any_work() {
        let locked = locked_design();
        let names = locked.key_input_names();
        let mut cfg = MuxLinkConfig::quick();
        cfg.batch_size = 0;
        let err = AttackSession::new(&locked.netlist, &names, cfg)
            .extract()
            .unwrap_err();
        assert!(matches!(err, AttackError::InvalidConfig(_)));
        let mut cfg = MuxLinkConfig::quick();
        cfg.epochs = 0;
        assert!(matches!(
            AttackSession::new(&locked.netlist, &names, cfg).extract(),
            Err(AttackError::InvalidConfig(_))
        ));
    }

    #[test]
    fn verify_design_accepts_origin_and_rejects_impostors() {
        let locked = locked_design();
        let names = locked.key_input_names();
        let trained = AttackSession::new(&locked.netlist, &names, MuxLinkConfig::quick())
            .extract()
            .unwrap()
            .prepare(&NoProgress)
            .unwrap()
            .train(&NoProgress)
            .unwrap();
        trained
            .verify_design(&locked.netlist, &names)
            .expect("the origin design must verify");
        // A different design with the same key size and the same
        // keyinput0..N names must be rejected on MUX structure.
        let other = SynthConfig::new("s2", 14, 6, 210).generate(32);
        let other_locked = dmux::lock(&other, &LockOptions::new(6, 3)).unwrap();
        let err = trained
            .verify_design(&other_locked.netlist, &other_locked.key_input_names())
            .unwrap_err();
        assert!(matches!(err, AttackError::Checkpoint(_)), "{err}");
    }

    /// The shared digest and `verify_design` must agree: the origin
    /// netlist fingerprints to the checkpoint's own digest (and
    /// verifies), an impostor fingerprints differently (and is
    /// rejected) — the cache key and the verifier cannot drift.
    #[test]
    fn fingerprint_agrees_with_verify_design() {
        let locked = locked_design();
        let names = locked.key_input_names();
        let trained = AttackSession::new(&locked.netlist, &names, MuxLinkConfig::quick())
            .extract()
            .unwrap()
            .prepare(&NoProgress)
            .unwrap()
            .train(&NoProgress)
            .unwrap();
        let origin = DesignFingerprint::of_netlist(&locked.netlist, &names).unwrap();
        assert_eq!(trained.fingerprint(), origin);
        trained.verify_design(&locked.netlist, &names).unwrap();

        let other = SynthConfig::new("s2", 14, 6, 210).generate(32);
        let other_locked = dmux::lock(&other, &LockOptions::new(6, 3)).unwrap();
        let other_fp =
            DesignFingerprint::of_netlist(&other_locked.netlist, &other_locked.key_input_names())
                .unwrap();
        assert_ne!(trained.fingerprint(), other_fp);
        assert!(trained
            .verify_design(&other_locked.netlist, &other_locked.key_input_names())
            .is_err());
        // A checkpoint serde round trip preserves the digest.
        let json = serde_json::to_string(&trained).unwrap();
        let restored: Trained = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.fingerprint(), origin);
    }

    /// `cfg.canonicalize` must behave exactly like running the cleanup
    /// pipeline by hand before attacking — bit-identical scores — and a
    /// checkpoint trained under it must still verify against the *raw*
    /// netlist it came from.
    #[test]
    fn canonicalize_matches_manual_cleanup_bitwise() {
        // Cleanup can elide a buffer between a primary input and a key-MUX
        // data pin, which makes the cleaned design un-extractable
        // (MuxDataFromPrimaryInput) — deterministically pick a seed whose
        // locked design survives canonicalization.
        let locked = (31..64)
            .map(|seed| {
                let design = SynthConfig::new("s", 14, 6, 200).generate(seed);
                dmux::lock(&design, &LockOptions::new(6, 3)).unwrap()
            })
            .find(|locked| {
                let mut cleaned = locked.netlist.clone();
                muxlink_netlist::passes::Pipeline::cleanup()
                    .run(&mut cleaned)
                    .is_ok()
                    && extract(&cleaned, &locked.key_input_names()).is_ok()
            })
            .expect("some seed must survive cleanup");
        let names = locked.key_input_names();
        let mut cfg = MuxLinkConfig::quick();
        cfg.epochs = 4;
        cfg.max_train_links = 200;

        let trained =
            AttackSession::new(&locked.netlist, &names, cfg.clone().with_canonicalize(true))
                .extract()
                .unwrap()
                .prepare(&NoProgress)
                .unwrap()
                .train(&NoProgress)
                .unwrap();
        let auto = trained.score(&NoProgress).unwrap();

        let mut cleaned = locked.netlist.clone();
        muxlink_netlist::passes::Pipeline::cleanup()
            .run(&mut cleaned)
            .unwrap();
        let manual = AttackSession::new(&cleaned, &names, cfg)
            .run(&NoProgress)
            .unwrap();
        assert_eq!(auto.scores, manual.scores);
        assert_eq!(auto.train_report, manual.train_report);

        // verify_design re-applies the same canonicalization, so the raw
        // origin netlist still verifies.
        trained.verify_design(&locked.netlist, &names).unwrap();
    }

    #[test]
    fn trained_checkpoint_round_trips_to_identical_scores() {
        let locked = locked_design();
        let names = locked.key_input_names();
        let cfg = MuxLinkConfig::quick();
        let trained = AttackSession::new(&locked.netlist, &names, cfg.clone())
            .extract()
            .unwrap()
            .prepare(&NoProgress)
            .unwrap()
            .train(&NoProgress)
            .unwrap();
        let direct = trained.score(&NoProgress).unwrap();
        let json = serde_json::to_string(&trained).unwrap();
        let restored: Trained = serde_json::from_str(&json).unwrap();
        let rescored = restored.score(&NoProgress).unwrap();
        assert_eq!(
            rescored.scores, direct.scores,
            "scores must be bit-identical"
        );
        assert_eq!(
            rescored.recover_key(cfg.th),
            direct.recover_key(cfg.th),
            "recovered key must be identical after a checkpoint round trip"
        );
    }
}
