use std::fmt;

use muxlink_graph::ExtractError;

/// Errors raised by the MuxLink attack pipeline and the staged
/// [`AttackSession`](crate::AttackSession) API.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm, so new failure modes can be added without a breaking
/// release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// The locked design could not be converted into a gate graph.
    Extract(ExtractError),
    /// The design has no key MUXes — nothing to attack.
    NoKeyMuxes,
    /// The sampled training dataset is empty (design too small for the
    /// requested configuration).
    EmptyDataset,
    /// The requested worker-thread pool could not be built.
    ThreadPool(String),
    /// A configuration value is unusable before any work starts (for
    /// example `batch_size == 0`, which would otherwise panic deep in the
    /// training loop).
    InvalidConfig(String),
    /// The run was stopped cooperatively via
    /// [`Progress::cancelled`](crate::Progress::cancelled).
    Cancelled,
    /// Reading or writing an attack artifact (model checkpoint, suite
    /// record) failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// A serialized artifact could not be parsed back into its stage type.
    Checkpoint(String),
    /// An internal invariant was violated — a bug surfaced as a typed
    /// error instead of a panic in the pipeline hot path.
    Internal(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Extract(e) => write!(f, "graph extraction failed: {e}"),
            Self::NoKeyMuxes => write!(f, "design contains no key-controlled MUXes"),
            Self::EmptyDataset => write!(f, "no training links could be sampled"),
            Self::ThreadPool(e) => write!(f, "worker pool construction failed: {e}"),
            Self::InvalidConfig(m) => write!(f, "invalid attack configuration: {m}"),
            Self::Cancelled => write!(f, "attack cancelled"),
            Self::Io { path, message } => write!(f, "i/o failure on `{path}`: {message}"),
            Self::Checkpoint(m) => write!(f, "unusable checkpoint: {m}"),
            Self::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Extract(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExtractError> for AttackError {
    fn from(e: ExtractError) -> Self {
        Self::Extract(e)
    }
}

/// Attaches the offending path to an I/O error.
pub(crate) fn io_error(path: &std::path::Path, e: &std::io::Error) -> AttackError {
    AttackError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(AttackError, &str)> = vec![
            (AttackError::NoKeyMuxes, "no key-controlled"),
            (AttackError::EmptyDataset, "no training links"),
            (AttackError::ThreadPool("x".into()), "worker pool"),
            (AttackError::InvalidConfig("epochs".into()), "invalid"),
            (AttackError::Cancelled, "cancelled"),
            (
                AttackError::Io {
                    path: "a.json".into(),
                    message: "denied".into(),
                },
                "a.json",
            ),
            (AttackError::Checkpoint("bad json".into()), "checkpoint"),
            (AttackError::Internal("bug".into()), "invariant"),
        ];
        for (err, needle) in cases {
            let text = err.to_string().to_lowercase();
            assert!(text.contains(needle), "`{text}` should contain `{needle}`");
        }
    }

    #[test]
    fn error_trait_exposes_extract_source() {
        use std::error::Error as _;
        let err = AttackError::Extract(ExtractError::UnknownKeyInput("k0".into()));
        assert!(err.source().is_some());
        assert!(AttackError::NoKeyMuxes.source().is_none());
    }
}
