use std::fmt;

use muxlink_graph::ExtractError;

/// Errors raised by the MuxLink attack pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// The locked design could not be converted into a gate graph.
    Extract(ExtractError),
    /// The design has no key MUXes — nothing to attack.
    NoKeyMuxes,
    /// The sampled training dataset is empty (design too small for the
    /// requested configuration).
    EmptyDataset,
    /// The requested worker-thread pool could not be built.
    ThreadPool(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Extract(e) => write!(f, "graph extraction failed: {e}"),
            Self::NoKeyMuxes => write!(f, "design contains no key-controlled MUXes"),
            Self::EmptyDataset => write!(f, "no training links could be sampled"),
            Self::ThreadPool(e) => write!(f, "worker pool construction failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Extract(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExtractError> for AttackError {
    fn from(e: ExtractError) -> Self {
        Self::Extract(e)
    }
}
