//! Bridging the graph substrate to the GNN: subgraph → feature matrix →
//! `GraphSample`, plus SortPool-`k` selection and parallel target
//! scoring.

use muxlink_gnn::{ArenaSamples, Dgcnn, GraphSample, NodeFeatures};
use muxlink_graph::dataset::{target_subgraphs, DatasetConfig};
use muxlink_graph::features::one_hot_features;
use muxlink_graph::graph::Link;
use muxlink_graph::{ExtractedDesign, SampleArena, Subgraph};
use rayon::prelude::*;

use crate::postprocess::MuxScores;
use crate::progress::{NoProgress, Progress};
use crate::AttackError;

/// Converts an enclosing subgraph into a GNN input sample.
///
/// Features are carried in the compact two-hot form
/// ([`NodeFeatures::OneHot`]): 8 bytes per node independent of the
/// dataset's feature width, and the DGCNN's first layer runs its fused
/// sparse kernels on them.
#[must_use]
pub fn to_graph_sample(sg: &Subgraph, max_label: u32, label: Option<bool>) -> GraphSample {
    GraphSample {
        adj: sg.adj.clone(),
        features: NodeFeatures::OneHot(one_hot_features(sg, max_label)),
        label,
    }
}

/// Upper bound on GNN samples materialised at once on the legacy
/// all-resident scoring path (`ds_cfg.chunk == 0`): keeps the feature
/// matrices of huge designs (thousands of key MUXes) from all being
/// resident simultaneously, without hurting parallelism.
const SCORE_CHUNK: usize = 256;

/// Scores both candidate links of every key MUX with the trained model.
///
/// D-MUX pairs share wires across MUXes, so the flattened candidate list
/// usually contains repeats; each **distinct** link is extracted and
/// scored exactly once (the model is deterministic, so a repeat would
/// reproduce the same probability bit-for-bit) and the result is
/// broadcast back in order.
///
/// With `ds_cfg.chunk > 0` (the production configuration) the unique
/// links **stream** through one recycled
/// [`SampleArena`]: each chunk is extracted directly into the arena
/// slabs, scored through [`Dgcnn::predict_batch`] via handle views, and
/// the arena is cleared — peak resident sample bytes are bounded by the
/// chunk size however many candidate links the design has. With
/// `chunk == 0` every target subgraph is materialised up front through
/// [`target_subgraphs`] (the all-resident path, kept as the executable
/// reference the streamed path is property-tested against). Every stage
/// preserves order, so the scores stay aligned with `extracted.muxes`
/// and bit-identical for any thread count, any chunk size — and to the
/// pre-dedup implementation.
#[must_use]
pub fn score_muxes(
    model: &Dgcnn,
    extracted: &ExtractedDesign,
    ds_cfg: &DatasetConfig,
    max_label: u32,
) -> MuxScores {
    match score_muxes_controlled(model, extracted, ds_cfg, max_label, &NoProgress) {
        Ok(scores) => scores,
        // NoProgress never cancels, and the internal-invariant arm is
        // unreachable by construction (every link is scored); fail loud
        // in the infallible wrapper rather than silently.
        Err(e) => unreachable!("uncancellable scoring cannot fail: {e}"),
    }
}

/// [`score_muxes`] with cooperative cancellation: `progress.cancelled()`
/// is polled between scoring chunks (a chunk is `ds_cfg.chunk` unique
/// links on the streamed path, at most `SCORE_CHUNK` = 256 on the
/// all-resident one). Identical bits to [`score_muxes`] when not
/// cancelled.
///
/// # Errors
///
/// [`AttackError::Cancelled`] when the observer requested a stop;
/// [`AttackError::Internal`] if a candidate link went unscored (a bug —
/// reported instead of panicking in the pipeline hot path).
pub fn score_muxes_controlled(
    model: &Dgcnn,
    extracted: &ExtractedDesign,
    ds_cfg: &DatasetConfig,
    max_label: u32,
    progress: &dyn Progress,
) -> Result<MuxScores, AttackError> {
    let links: Vec<Link> = extracted
        .muxes
        .iter()
        .flat_map(|m| [m.link0(), m.link1()])
        .collect();
    let mut unique = links.clone();
    unique.sort_unstable();
    unique.dedup();

    let mut unique_probs = Vec::with_capacity(unique.len());
    if ds_cfg.chunk == 0 {
        // All-resident reference path: every target subgraph
        // materialised up front, converted in bounded batches.
        let subgraphs = target_subgraphs(&extracted.graph, &unique, ds_cfg);
        for chunk in subgraphs.chunks(SCORE_CHUNK) {
            if progress.cancelled() {
                return Err(AttackError::Cancelled);
            }
            let samples: Vec<GraphSample> = chunk
                .par_iter()
                .map(|sg| to_graph_sample(sg, max_label, None))
                .collect();
            unique_probs.extend(model.predict_batch(&samples));
        }
    } else {
        // Streamed production path: one arena, recycled per chunk —
        // peak resident sample bytes stay bounded by the chunk size
        // however long the candidate list is.
        let mut arena = SampleArena::new();
        for chunk in unique.chunks(ds_cfg.chunk) {
            if progress.cancelled() {
                return Err(AttackError::Cancelled);
            }
            arena.clear();
            let jobs: Vec<(Link, Option<bool>)> = chunk.iter().map(|&l| (l, None)).collect();
            arena.extend_extract(&extracted.graph, &jobs, ds_cfg.h, ds_cfg.max_subgraph_nodes);
            unique_probs.extend(model.predict_batch(&ArenaSamples::all(&arena, max_label)));
        }
    }

    let prob_of = |l: &Link| -> Result<f64, AttackError> {
        let i = unique
            .binary_search(l)
            .map_err(|_| AttackError::Internal(format!("candidate link {l:?} was not scored")))?;
        Ok(f64::from(unique_probs[i]))
    };
    links
        .chunks_exact(2)
        .map(|p| Ok((prob_of(&p[0])?, prob_of(&p[1])?)))
        .collect()
}

/// Picks the SortPooling size `k` such that `percentile` of the given
/// subgraph sizes are ≤ `k` (paper: 60 %), clamped to at least `min_k`.
#[must_use]
pub fn choose_k(sizes: &[usize], percentile: f64, min_k: usize) -> usize {
    if sizes.is_empty() {
        return min_k;
    }
    let mut sorted: Vec<usize> = sizes.to_vec();
    sorted.sort_unstable();
    let pos = ((sorted.len() as f64 * percentile).ceil() as usize).clamp(1, sorted.len());
    sorted[pos - 1].max(min_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_graph::graph::{CircuitGraph, Link};
    use muxlink_graph::subgraph::enclosing_subgraph;
    use muxlink_netlist::{GateId, GateType};

    #[test]
    fn sample_has_matching_shapes() {
        let g = CircuitGraph::from_edges(
            (0..4).map(GateId::from_index).collect(),
            vec![GateType::Nand; 4],
            &[Link::new(0, 1), Link::new(1, 2), Link::new(2, 3)],
        );
        let sg = enclosing_subgraph(&g, Link::new(1, 2), 2, None);
        let s = to_graph_sample(&sg, sg.max_label(), Some(true));
        assert_eq!(s.node_count(), s.features.rows());
        assert_eq!(s.label, Some(true));
    }

    #[test]
    fn choose_k_sixty_percent_rule() {
        // Ten sizes; 60 % of subgraphs must fit in k.
        let sizes = vec![5, 8, 10, 12, 15, 18, 20, 30, 40, 100];
        let k = choose_k(&sizes, 0.6, 10);
        assert_eq!(k, 18);
    }

    #[test]
    fn choose_k_respects_minimum() {
        assert_eq!(choose_k(&[2, 3, 4], 0.6, 10), 10);
        assert_eq!(choose_k(&[], 0.6, 10), 10);
    }

    #[test]
    fn choose_k_full_percentile() {
        assert_eq!(choose_k(&[4, 7, 9], 1.0, 1), 9);
    }
}
