//! Design recovery: apply a (possibly partial) deciphered key to a locked
//! netlist and produce the attacker's reconstruction.

use muxlink_locking::{apply_key_values, KeyValue, LockError, LockedNetlist};
use muxlink_netlist::Netlist;

/// Reconstructs the design from a fully decided guess.
///
/// # Errors
///
/// [`LockError::UndecidedKeyBit`] when the guess contains `X` — resolve
/// undecided bits first (e.g. with [`resolve_x_with`]).
pub fn reconstruct(locked: &LockedNetlist, guess: &[KeyValue]) -> Result<Netlist, LockError> {
    apply_key_values(locked, guess)
}

/// Replaces every `X` in a guess with a fixed fallback bit (a pragmatic
/// attacker completes the key with a constant or with per-bit coin flips
/// before taping out a clone).
#[must_use]
pub fn resolve_x_with(guess: &[KeyValue], fallback: bool) -> Vec<KeyValue> {
    guess
        .iter()
        .map(|v| match v {
            KeyValue::X => KeyValue::from_bool(fallback),
            other => *other,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, LockOptions};
    use muxlink_netlist::sim::exhaustive_equiv;

    #[test]
    fn reconstruct_with_true_key_is_equivalent() {
        let design = SynthConfig::new("d", 12, 6, 160).generate(1);
        let locked = dmux::lock(&design, &LockOptions::new(6, 4)).unwrap();
        let rec = reconstruct(&locked, &locked.key.to_values()).unwrap();
        assert!(exhaustive_equiv(&design, &rec).unwrap());
    }

    #[test]
    fn x_resolution_fills_gaps() {
        let guess = vec![KeyValue::X, KeyValue::One, KeyValue::X];
        assert_eq!(
            resolve_x_with(&guess, false),
            vec![KeyValue::Zero, KeyValue::One, KeyValue::Zero]
        );
        assert_eq!(
            resolve_x_with(&guess, true),
            vec![KeyValue::One, KeyValue::One, KeyValue::One]
        );
    }

    #[test]
    fn reconstruct_rejects_undecided() {
        let design = SynthConfig::new("d", 12, 6, 160).generate(2);
        let locked = dmux::lock(&design, &LockOptions::new(4, 4)).unwrap();
        let mut guess = locked.key.to_values();
        guess[1] = KeyValue::X;
        assert!(matches!(
            reconstruct(&locked, &guess),
            Err(LockError::UndecidedKeyBit(1))
        ));
    }
}
