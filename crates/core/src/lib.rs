//! # muxlink-core
//!
//! The MuxLink attack (Alrahis et al., DATE 2022): an **oracle-less**
//! GNN-based link-prediction attack on the learning-resilient D-MUX and
//! symmetric MUX-based logic-locking schemes.
//!
//! The attack pipeline (paper Fig. 5):
//!
//! 1. trace the key inputs, remove the key MUXes and convert the netlist
//!    into an undirected gate graph (`muxlink-graph`),
//! 2. self-supervise a DGCNN on the design's own observed/unobserved wires
//!    (`muxlink-gnn`),
//! 3. score every MUX's two candidate wires with the trained model,
//! 4. post-process the likelihoods into key bits with threshold `th`
//!    (Algorithm 1) — [`postprocess`],
//! 5. report accuracy / precision / KPA / Hamming distance —
//!    [`metrics`].
//!
//! The expensive steps (1–3) are separated from the cheap ones (4–5) so
//! threshold sweeps (paper Fig. 9) re-use one trained model.
//!
//! Two entry surfaces expose the pipeline:
//!
//! * the **staged session API** ([`AttackSession`]) — typed, serializable
//!   stage artifacts (`Extracted → Prepared → Trained → ScoredDesign`),
//!   model checkpointing, a [`Progress`] observer with cooperative
//!   cancellation, and the [`run_suite`] multi-design driver;
//! * the **one-shot wrappers** ([`score_design`] / [`attack`]) — the
//!   whole chain in one call, bit-identical to the staged path.
//!
//! # Example
//!
//! ```no_run
//! use muxlink_core::{MuxLinkConfig, attack};
//! use muxlink_locking::{dmux, LockOptions};
//!
//! let design = muxlink_benchgen::SyntheticSuite::iscas85()
//!     .scaled(0.1)
//!     .profiles[0]
//!     .generate(1);
//! let locked = dmux::lock(&design, &LockOptions::new(32, 7)).unwrap();
//! let outcome = attack(
//!     &locked.netlist,
//!     &locked.key_input_names(),
//!     &MuxLinkConfig::quick(),
//! )
//! .unwrap();
//! let m = muxlink_core::metrics::score_key(&outcome.guess, &locked.key);
//! println!("AC={:.1}% PC={:.1}% KPA={:.1}%", m.accuracy_pct(), m.precision_pct(), m.kpa_pct().unwrap_or(f64::NAN));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod fingerprint;
pub mod metrics;
pub mod pipeline;
pub mod postprocess;
pub mod progress;
pub mod recover;
pub mod report;
pub mod scoring;
pub mod session;
pub mod suite;

pub use config::MuxLinkConfig;
pub use error::AttackError;
pub use fingerprint::{key_input_names, DesignFingerprint};
pub use pipeline::{
    attack, score_design, score_design_with_heuristic, AttackOutcome, ScoredDesign,
};
pub use postprocess::{recover_key, LocalityKind};
pub use progress::{CancelFlag, NoProgress, Progress, Stage};
pub use report::AttackReport;
pub use session::{AttackSession, Extracted, Prepared, Trained};
pub use suite::{run_suite, SuiteJob, SuiteOptions, SuiteRecord};
// Training statistics flow through `Progress::epoch_finished`; re-export
// the types so observers need no direct `muxlink-gnn` dependency.
pub use muxlink_gnn::{EpochStats, TrainReport};
