//! Structural design fingerprints: the identity of a locked design.
//!
//! A [`DesignFingerprint`] digests exactly the structure
//! [`Trained::verify_design`](crate::Trained::verify_design) compares —
//! the key-input names (in key-bit order) and the extracted key-MUX
//! candidates (gate ids, key bits, sink and candidate-source nodes).
//! Extraction is deterministic, so the same locked netlist always
//! produces the same fingerprint, and the one digest is shared by
//!
//! * checkpoint verification ([`Trained::verify_design`]),
//! * the attack service's checkpoint cache key (`muxlink serve`),
//! * the wire protocol (`key` fields carry the hex form),
//!
//! so the three can never drift apart.
//!
//! The digest is 256 bits of FNV-1a-64 over a canonical byte encoding,
//! run as four independently-salted streams. That is collision-resistant
//! enough for cache keying and drift detection of honest inputs; it is
//! **not** a cryptographic commitment, which is why
//! [`Trained::verify_design`] keeps the full structural comparison as a
//! backstop when digests match.
//!
//! [`Trained::verify_design`]: crate::Trained::verify_design

use std::fmt;
use std::str::FromStr;

use muxlink_graph::MuxCandidate;
use serde::{DeError, Deserialize, Serialize, Value};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Per-stream salts: four independent digests of the same byte feed.
const SALTS: [u64; 4] = [
    0x0000_0000_0000_0000,
    0x9e37_79b9_7f4a_7c15,
    0x6a09_e667_f3bc_c908,
    0xbb67_ae85_84ca_a73b,
];

/// A 256-bit structural fingerprint of a locked design's key-MUX
/// structure, rendered as 64 lower-case hex characters on the wire.
///
/// Two designs compare equal under
/// [`Trained::verify_design`](crate::Trained::verify_design) exactly
/// when their fingerprint inputs are identical, so equal inputs always
/// produce equal fingerprints (the converse holds up to digest
/// collisions; callers that must exclude even those compare the
/// structure itself after the digests match).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignFingerprint([u64; 4]);

/// The four digest streams fed in lock-step.
struct Streams([u64; 4]);

impl Streams {
    fn new() -> Self {
        Self([
            FNV_OFFSET ^ SALTS[0],
            FNV_OFFSET ^ SALTS[1],
            FNV_OFFSET ^ SALTS[2],
            FNV_OFFSET ^ SALTS[3],
        ])
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            for h in &mut self.0 {
                *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

impl DesignFingerprint {
    /// Digests the structure checkpoint verification compares: the
    /// key-input names in key-bit order plus every key-MUX candidate's
    /// gate id, key bit, sink node and the two candidate source nodes.
    #[must_use]
    pub fn compute(key_input_names: &[String], muxes: &[MuxCandidate]) -> Self {
        let mut s = Streams::new();
        s.u64(key_input_names.len() as u64);
        for name in key_input_names {
            s.u64(name.len() as u64);
            s.bytes(name.as_bytes());
        }
        s.u64(muxes.len() as u64);
        for m in muxes {
            s.u64(m.mux_gate.index() as u64);
            s.u64(m.key_bit as u64);
            s.u64(u64::from(m.sink));
            s.u64(u64::from(m.src0));
            s.u64(u64::from(m.src1));
        }
        Self(s.0)
    }

    /// Extracts `netlist` and fingerprints the result — the one-step
    /// form used by the attack service to key its checkpoint cache.
    ///
    /// # Errors
    ///
    /// [`AttackError::Extract`](crate::AttackError::Extract) when the
    /// netlist cannot be extracted and
    /// [`AttackError::NoKeyMuxes`](crate::AttackError::NoKeyMuxes) when
    /// it has no key MUXes (nothing a checkpoint could describe).
    pub fn of_netlist(
        netlist: &muxlink_netlist::Netlist,
        key_input_names: &[String],
    ) -> Result<Self, crate::AttackError> {
        let design = muxlink_graph::extract(netlist, key_input_names)?;
        if design.muxes.is_empty() {
            return Err(crate::AttackError::NoKeyMuxes);
        }
        Ok(Self::compute(key_input_names, &design.muxes))
    }

    /// The 64-character lower-case hex form (the wire encoding).
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for w in self.0 {
            out.push_str(&format!("{w:016x}"));
        }
        out
    }

    /// Parses the 64-character hex form back.
    ///
    /// # Errors
    ///
    /// A description of the malformed input (wrong length or non-hex
    /// characters).
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.len() != 64 {
            return Err(format!(
                "design fingerprint must be 64 hex characters, got {}",
                text.len()
            ));
        }
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            let chunk = &text[i * 16..(i + 1) * 16];
            *w = u64::from_str_radix(chunk, 16)
                .map_err(|_| format!("design fingerprint has non-hex characters: `{chunk}`"))?;
        }
        Ok(Self(words))
    }
}

/// The key-input names of a locked netlist, in key-bit order.
///
/// Recognises the [`muxlink_locking::KEY_INPUT_PREFIX`] naming
/// convention every locking scheme in this workspace emits
/// (`keyinput0`, `keyinput1`, …) and sorts by the numeric suffix, so
/// position `i` of the result is key bit `i`. Inputs that do not follow
/// the convention are ignored; an empty result means the netlist is not
/// locked (or was locked by an incompatible tool).
///
/// This is the one canonical way the CLI and the attack service derive
/// the name list that feeds [`DesignFingerprint::compute`] — a private
/// copy in each front end could drift and silently change fingerprints.
#[must_use]
pub fn key_input_names(netlist: &muxlink_netlist::Netlist) -> Vec<String> {
    let mut names: Vec<(usize, String)> = netlist
        .input_names()
        .into_iter()
        .filter_map(|n| {
            n.strip_prefix(muxlink_locking::KEY_INPUT_PREFIX)
                .and_then(|suffix| suffix.parse::<usize>().ok())
                .map(|i| (i, n.to_owned()))
        })
        .collect();
    names.sort();
    names.into_iter().map(|(_, n)| n).collect()
}

impl fmt::Display for DesignFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for DesignFingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

// Hand-written serde: the wire form is the hex string, not a `[u64; 4]`
// sequence, so fingerprints embed naturally in JSON protocols and file
// names.
impl Serialize for DesignFingerprint {
    fn to_value(&self) -> Value {
        Value::Str(self.to_hex())
    }
}

impl Deserialize for DesignFingerprint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Self::parse(s).map_err(DeError),
            other => Err(DeError(format!(
                "expected design-fingerprint hex string, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, LockOptions};

    fn locked(seed: u64, gates: usize) -> muxlink_locking::LockedNetlist {
        let design = SynthConfig::new("fp", 14, 6, gates).generate(seed);
        dmux::lock(&design, &LockOptions::new(6, 3)).unwrap()
    }

    #[test]
    fn same_design_same_fingerprint() {
        let l = locked(31, 200);
        let names = l.key_input_names();
        let a = DesignFingerprint::of_netlist(&l.netlist, &names).unwrap();
        let b = DesignFingerprint::of_netlist(&l.netlist, &names).unwrap();
        assert_eq!(a, b, "extraction is deterministic");
    }

    #[test]
    fn different_designs_different_fingerprints() {
        let a = locked(31, 200);
        let b = locked(32, 210);
        let fa = DesignFingerprint::of_netlist(&a.netlist, &a.key_input_names()).unwrap();
        let fb = DesignFingerprint::of_netlist(&b.netlist, &b.key_input_names()).unwrap();
        assert_ne!(fa, fb);
    }

    #[test]
    fn hex_round_trips() {
        let l = locked(33, 190);
        let fp = DesignFingerprint::of_netlist(&l.netlist, &l.key_input_names()).unwrap();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(DesignFingerprint::parse(&hex).unwrap(), fp);
        assert_eq!(hex.parse::<DesignFingerprint>().unwrap(), fp);
    }

    #[test]
    fn key_input_names_recovers_key_bit_order() {
        let l = locked(36, 200);
        // The locked netlist knows its own names; the free function must
        // recover exactly that list from the netlist alone.
        assert_eq!(key_input_names(&l.netlist), l.key_input_names());
        // And an unlocked design has none.
        let plain = SynthConfig::new("plain", 10, 4, 80).generate(7);
        assert!(key_input_names(&plain).is_empty());
    }

    #[test]
    fn malformed_hex_is_rejected() {
        assert!(DesignFingerprint::parse("abc").is_err());
        assert!(DesignFingerprint::parse(&"g".repeat(64)).is_err());
    }

    #[test]
    fn serde_uses_the_hex_string_form() {
        let l = locked(34, 180);
        let fp = DesignFingerprint::of_netlist(&l.netlist, &l.key_input_names()).unwrap();
        let json = serde_json::to_string(&fp).unwrap();
        assert_eq!(json, format!("\"{}\"", fp.to_hex()));
        let back: DesignFingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn names_and_structure_both_feed_the_digest() {
        let l = locked(35, 200);
        let names = l.key_input_names();
        let design = muxlink_graph::extract(&l.netlist, &names).unwrap();
        let base = DesignFingerprint::compute(&names, &design.muxes);
        // Reordering the names changes the digest (key-bit order is
        // part of the identity).
        let mut reversed = names.clone();
        reversed.reverse();
        assert_ne!(DesignFingerprint::compute(&reversed, &design.muxes), base);
        // Dropping one MUX changes the digest.
        assert_ne!(DesignFingerprint::compute(&names, &design.muxes[1..]), base);
        // Field-level sensitivity: nudging one source node flips it.
        let mut tweaked = design.muxes.clone();
        tweaked[0].src0 = tweaked[0].src0.wrapping_add(1);
        assert_ne!(DesignFingerprint::compute(&names, &tweaked), base);
    }
}
