//! Multi-design suite runner: shard many locked designs across one rayon
//! pool, one result record — and optionally one JSON file — per design.
//!
//! This is the workload shape of the paper's Fig. 7 / Fig. 10 campaigns
//! (every benchmark × scheme × key size as an independent attack) and of
//! the ROADMAP's multi-design sharding item: designs are embarrassingly
//! parallel, so [`run_suite`] drives them through **one process and one
//! pool** with work stealing between designs *and* within each design's
//! stages. Records preserve job order and each design's numbers are
//! bit-identical for any thread count (each attack is internally
//! order-fixed and independent of its neighbours).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use muxlink_locking::{Key, KeyValue};
use muxlink_netlist::Netlist;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::io_error;
use crate::metrics::{score_key, KeyMetrics};
use crate::progress::Progress;
use crate::report::Timings;
use crate::session::AttackSession;
use crate::{AttackError, MuxLinkConfig};

/// One design to attack in a suite run.
#[derive(Debug, Clone)]
pub struct SuiteJob {
    /// Label for reports and the per-design JSON file name.
    pub name: String,
    /// The locked netlist under attack.
    pub netlist: Netlist,
    /// Key-input names in key-bit order.
    pub key_input_names: Vec<String>,
    /// Ground-truth key bits, when known (synthetic benchmarks) — enables
    /// AC/PC/KPA metrics in the record.
    pub truth: Option<Vec<bool>>,
}

/// Per-design outcome of a suite run (serialized as the per-design JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteRecord {
    /// Job label.
    pub name: String,
    /// Recovered key as a `0`/`1`/`X` string (`None` on failure).
    pub key_string: Option<String>,
    /// Key length of the design.
    pub key_len: usize,
    /// Number of decided (non-X) bits.
    pub decided: usize,
    /// Chosen SortPooling size (0 on failure).
    pub k: usize,
    /// Best validation accuracy of the GNN (NaN on failure).
    pub val_accuracy: f64,
    /// Wall-clock seconds for this design's whole attack.
    pub seconds: f64,
    /// Stage timing breakdown (`None` on failure).
    pub timings: Option<Timings>,
    /// AC/PC/KPA against the supplied ground truth, when available.
    pub metrics: Option<KeyMetrics>,
    /// Failure message: the attack did not complete, or its JSON record
    /// could not be written (the attack fields stay populated then).
    pub error: Option<String>,
}

impl SuiteRecord {
    /// True when the attack completed and, if an output directory was
    /// requested, its JSON record was persisted ([`SuiteRecord::error`]
    /// distinguishes the two: a write failure leaves the attack fields
    /// populated).
    #[must_use]
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Options of a suite run.
#[derive(Debug, Clone, Default)]
pub struct SuiteOptions {
    /// When set, one `<name>.json` [`SuiteRecord`] is written per design
    /// into this directory (created if missing) as soon as the design
    /// finishes.
    pub out_dir: Option<PathBuf>,
}

/// File-system-safe version of a job name (used for per-design JSON).
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "design".to_owned()
    } else {
        cleaned
    }
}

/// Attacks every job, sharded across one rayon pool of
/// [`MuxLinkConfig::threads`] workers (0 = ambient pool).
///
/// Per-design failures — an attack error (for example a design with no
/// key MUXes) or a failed write of that design's JSON record — land in
/// that design's [`SuiteRecord::error`]; **the suite keeps going** and
/// every computed record is returned. When `progress.cancelled()`
/// trips, designs that have not started record an `attack cancelled`
/// error and in-flight designs stop at their next check point. Output
/// order matches `jobs`.
///
/// # Errors
///
/// Only for setup failures that affect the whole run:
/// [`AttackError::ThreadPool`] when the pool could not be built and
/// [`AttackError::Io`] when the output directory could not be created.
///
/// # Example
///
/// ```no_run
/// use muxlink_core::{run_suite, MuxLinkConfig, NoProgress, SuiteJob, SuiteOptions};
/// use muxlink_locking::{dmux, LockOptions};
///
/// let jobs: Vec<SuiteJob> = [11u64, 12]
///     .iter()
///     .map(|&seed| {
///         let design =
///             muxlink_benchgen::synth::SynthConfig::new("d", 16, 8, 260).generate(seed);
///         let locked = dmux::lock(&design, &LockOptions::new(8, 3)).unwrap();
///         SuiteJob {
///             name: format!("design-{seed}"),
///             key_input_names: locked.key_input_names(),
///             truth: Some(locked.key.bits().to_vec()),
///             netlist: locked.netlist,
///         }
///     })
///     .collect();
///
/// let opts = SuiteOptions {
///     out_dir: Some("suite-out".into()),
/// };
/// let records = run_suite(&jobs, &MuxLinkConfig::quick(), &opts, &NoProgress).unwrap();
/// for r in &records {
///     println!("{}: {:?} ({} of {} bits decided)", r.name, r.key_string, r.decided, r.key_len);
/// }
/// ```
pub fn run_suite(
    jobs: &[SuiteJob],
    cfg: &MuxLinkConfig,
    opts: &SuiteOptions,
    progress: &dyn Progress,
) -> Result<Vec<SuiteRecord>, AttackError> {
    if let Some(dir) = &opts.out_dir {
        fs::create_dir_all(dir).map_err(|e| io_error(dir, &e))?;
    }
    // Resolve record-file names up front so per-design files never
    // clobber each other: deterministic `_n` suffixes, checked against
    // every name already taken (a literal "c1355_1" job cannot collide
    // with the suffixed second "c1355").
    let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
    let file_names: Vec<String> = jobs
        .iter()
        .map(|j| {
            let base = sanitize(&j.name);
            let mut name = base.clone();
            let mut n = 1usize;
            while !taken.insert(name.clone()) {
                name = format!("{base}_{n}");
                n += 1;
            }
            name
        })
        .collect();

    let tagged: Vec<(&SuiteJob, &str)> = jobs
        .iter()
        .zip(file_names.iter().map(String::as_str))
        .collect();
    let run_all = || -> Vec<SuiteRecord> {
        tagged
            .par_iter()
            .map(|&(job, file_name)| {
                let mut record = run_one(job, cfg, progress);
                if let Some(dir) = &opts.out_dir {
                    let path = dir.join(format!("{file_name}.json"));
                    let written = serde_json::to_string_pretty(&record)
                        .map_err(|e| AttackError::Internal(e.to_string()))
                        .and_then(|json| fs::write(&path, json).map_err(|e| io_error(&path, &e)));
                    if let Err(e) = written {
                        // The attack results stay in the record; only
                        // the persistence failure is reported.
                        record.error = Some(match record.error.take() {
                            Some(prev) => format!("{prev}; record write failed: {e}"),
                            None => format!("record write failed: {e}"),
                        });
                    }
                }
                record
            })
            .collect()
    };

    if cfg.threads == 0 {
        return Ok(run_all());
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cfg.threads)
        .build()
        .map_err(|e| AttackError::ThreadPool(e.to_string()))?;
    Ok(pool.install(run_all))
}

/// One design through the staged session, folded into a record.
fn run_one(job: &SuiteJob, cfg: &MuxLinkConfig, progress: &dyn Progress) -> SuiteRecord {
    let t0 = Instant::now();
    // Each design runs on the ambient (suite) pool: stage-internal
    // parallelism and cross-design sharding share the same workers.
    let per_design = MuxLinkConfig {
        threads: 0,
        ..cfg.clone()
    };
    let scored = if progress.cancelled() {
        Err(AttackError::Cancelled)
    } else {
        AttackSession::new(&job.netlist, &job.key_input_names, per_design).run(progress)
    };
    let seconds = t0.elapsed().as_secs_f64();
    match scored {
        Ok(scored) => {
            let guess = scored.recover_key(cfg.th);
            let metrics = job
                .truth
                .as_ref()
                .map(|bits| score_key(&guess, &Key::from_bits(bits.clone())));
            SuiteRecord {
                name: job.name.clone(),
                key_string: Some(guess.iter().map(ToString::to_string).collect()),
                key_len: guess.len(),
                decided: guess.iter().filter(|v| **v != KeyValue::X).count(),
                k: scored.k,
                val_accuracy: scored.train_report.best_val_accuracy,
                seconds,
                timings: Some(scored.timings),
                metrics,
                error: None,
            }
        }
        Err(e) => SuiteRecord {
            name: job.name.clone(),
            key_string: None,
            key_len: job.key_input_names.len(),
            decided: 0,
            k: 0,
            val_accuracy: f64::NAN,
            seconds,
            timings: None,
            metrics: None,
            error: Some(e.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::NoProgress;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, symmetric, LockOptions};

    fn job(seed: u64, name: &str, scheme: fn() -> bool) -> SuiteJob {
        let design = SynthConfig::new(name, 14, 6, 190).generate(seed);
        let locked = if scheme() {
            dmux::lock(&design, &LockOptions::new(4, 2)).unwrap()
        } else {
            symmetric::lock(&design, &LockOptions::new(4, 2)).unwrap()
        };
        SuiteJob {
            name: name.to_owned(),
            key_input_names: locked.key_input_names(),
            truth: Some(
                locked
                    .key
                    .to_values()
                    .iter()
                    .map(|v| *v == KeyValue::One)
                    .collect(),
            ),
            netlist: locked.netlist,
        }
    }

    #[test]
    fn suite_runs_designs_and_writes_one_json_each() {
        let jobs = vec![job(41, "alpha", || true), job(42, "beta/β", || false)];
        let dir = std::env::temp_dir().join("muxlink-suite-test");
        let _ = fs::remove_dir_all(&dir);
        let opts = SuiteOptions {
            out_dir: Some(dir.clone()),
        };
        let cfg = MuxLinkConfig::quick().with_threads(2);
        let records = run_suite(&jobs, &cfg, &opts, &NoProgress).unwrap();
        assert_eq!(records.len(), 2);
        for (r, j) in records.iter().zip(&jobs) {
            assert!(r.ok(), "{:?}", r.error);
            assert_eq!(r.name, j.name);
            assert_eq!(r.key_len, 4);
            assert!(r.metrics.is_some(), "truth was supplied");
        }
        // One parseable JSON per design, name-sanitized.
        for file in ["alpha.json", "beta__.json"] {
            let text = fs::read_to_string(dir.join(file)).unwrap();
            let parsed: SuiteRecord = serde_json::from_str(&text).unwrap();
            assert!(parsed.ok());
        }
    }

    #[test]
    fn suite_records_are_thread_count_invariant() {
        let jobs = vec![job(43, "a", || true), job(44, "b", || true)];
        let opts = SuiteOptions::default();
        let r1 = run_suite(
            &jobs,
            &MuxLinkConfig::quick().with_threads(1),
            &opts,
            &NoProgress,
        )
        .unwrap();
        let r4 = run_suite(
            &jobs,
            &MuxLinkConfig::quick().with_threads(4),
            &opts,
            &NoProgress,
        )
        .unwrap();
        for (a, b) in r1.iter().zip(&r4) {
            assert_eq!(a.key_string, b.key_string);
            assert_eq!(a.val_accuracy.to_bits(), b.val_accuracy.to_bits());
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn per_design_failures_do_not_abort_the_suite() {
        let unlocked = SynthConfig::new("plain", 10, 4, 100).generate(15);
        let jobs = vec![
            SuiteJob {
                name: "broken".into(),
                netlist: unlocked,
                key_input_names: Vec::new(),
                truth: None,
            },
            job(45, "fine", || true),
        ];
        let records = run_suite(
            &jobs,
            &MuxLinkConfig::quick(),
            &SuiteOptions::default(),
            &NoProgress,
        )
        .unwrap();
        assert!(!records[0].ok());
        assert!(records[0].error.as_deref().unwrap().contains("no key"));
        assert!(records[1].ok());
    }

    #[test]
    fn duplicate_names_get_distinct_files_even_against_literal_suffixes() {
        // The third job's literal name collides with the suffix the
        // second job receives; every record must still get its own file.
        let jobs = vec![
            job(46, "same", || true),
            job(47, "same", || true),
            job(48, "same_1", || true),
        ];
        let dir = std::env::temp_dir().join("muxlink-suite-dup-test");
        let _ = fs::remove_dir_all(&dir);
        let opts = SuiteOptions {
            out_dir: Some(dir.clone()),
        };
        let records = run_suite(&jobs, &MuxLinkConfig::quick(), &opts, &NoProgress).unwrap();
        assert!(records.iter().all(SuiteRecord::ok));
        for file in ["same.json", "same_1.json", "same_1_1.json"] {
            assert!(dir.join(file).exists(), "{file} missing");
        }
        // The deduped file carries the second job's record, not a copy
        // of the third's.
        let text = fs::read_to_string(dir.join("same_1.json")).unwrap();
        let parsed: SuiteRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.name, "same");
    }

    #[test]
    fn record_write_failure_stays_per_design() {
        let jobs = vec![job(49, "writable", || true), job(50, "blocked", || true)];
        let dir = std::env::temp_dir().join("muxlink-suite-write-fail-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // A directory squatting on the second record's path makes its
        // write fail while the first proceeds.
        fs::create_dir_all(dir.join("blocked.json")).unwrap();
        let opts = SuiteOptions {
            out_dir: Some(dir.clone()),
        };
        let records = run_suite(&jobs, &MuxLinkConfig::quick(), &opts, &NoProgress).unwrap();
        assert!(records[0].ok());
        assert!(dir.join("writable.json").exists());
        let blocked = &records[1];
        assert!(!blocked.ok());
        assert!(
            blocked.error.as_deref().unwrap().contains("write failed"),
            "{:?}",
            blocked.error
        );
        // The attack itself completed — its results are preserved.
        assert!(blocked.key_string.is_some());
        assert!(blocked.metrics.is_some());
    }
}
