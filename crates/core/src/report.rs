//! Human-readable attack reporting.

use std::fmt;
use std::time::Duration;

use muxlink_locking::KeyValue;
use serde::{Deserialize, Serialize};

use crate::metrics::KeyMetrics;

/// Worker-thread counts used by each pipeline stage (1 = sequential).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageThreads {
    /// Graph extraction (always sequential today).
    pub extract: usize,
    /// Dataset generation.
    pub dataset: usize,
    /// DGCNN training.
    pub train: usize,
    /// Target-link scoring.
    pub score: usize,
}

impl StageThreads {
    /// All stages on `n` threads except extraction (sequential).
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        Self {
            extract: 1,
            dataset: n,
            train: n,
            score: n,
        }
    }
}

/// Wall-clock breakdown of the expensive pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Timings {
    /// Graph extraction.
    pub extract: Duration,
    /// Dataset generation (link sampling + subgraph extraction).
    pub dataset: Duration,
    /// DGCNN training.
    pub train: Duration,
    /// Target-link scoring.
    pub score: Duration,
    /// Worker threads each stage ran with.
    pub threads: StageThreads,
}

impl Timings {
    /// Sum of all stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.extract + self.dataset + self.train + self.score
    }
}

/// A complete attack report: key metrics, timing, model quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackReport {
    /// Name of the attacked design.
    pub design: String,
    /// Locking scheme label (for presentation only).
    pub scheme: String,
    /// Key size.
    pub key_size: usize,
    /// Deciphered key string (`0`/`1`/`X`).
    pub key_string: String,
    /// Scoring metrics.
    pub metrics: KeyMetrics,
    /// Validation accuracy of the selected GNN.
    pub val_accuracy: f64,
    /// Stage timings.
    pub timings: Timings,
}

impl AttackReport {
    /// Assembles a report from attack artefacts.
    #[must_use]
    pub fn new(
        design: impl Into<String>,
        scheme: impl Into<String>,
        guess: &[KeyValue],
        metrics: KeyMetrics,
        val_accuracy: f64,
        timings: Timings,
    ) -> Self {
        Self {
            design: design.into(),
            scheme: scheme.into(),
            key_size: guess.len(),
            key_string: guess.iter().map(ToString::to_string).collect(),
            metrics,
            val_accuracy,
            timings,
        }
    }
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MuxLink on {} [{}], K={}",
            self.design, self.scheme, self.key_size
        )?;
        writeln!(f, "  key: {}", self.key_string)?;
        let kpa = self
            .metrics
            .kpa_pct()
            .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.2}%"));
        writeln!(
            f,
            "  AC {:.2}%  PC {:.2}%  KPA {}  (correct {}, X {}, total {})",
            self.metrics.accuracy_pct(),
            self.metrics.precision_pct(),
            kpa,
            self.metrics.correct,
            self.metrics.x_count,
            self.metrics.total
        )?;
        writeln!(f, "  GNN val accuracy {:.2}%", self.val_accuracy * 100.0)?;
        write!(
            f,
            "  time: extract {:?}, dataset {:?}×{}t, train {:?}×{}t, score {:?}×{}t (total {:?})",
            self.timings.extract,
            self.timings.dataset,
            self.timings.threads.dataset.max(1),
            self.timings.train,
            self.timings.threads.train.max(1),
            self.timings.score,
            self.timings.threads.score.max(1),
            self.timings.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_sections() {
        let metrics = KeyMetrics {
            correct: 3,
            x_count: 1,
            total: 4,
        };
        let guess = vec![KeyValue::One, KeyValue::Zero, KeyValue::X, KeyValue::One];
        let r = AttackReport::new("c17", "D-MUX", &guess, metrics, 0.95, Timings::default());
        let text = r.to_string();
        assert!(text.contains("c17"));
        assert!(text.contains("10X1"));
        assert!(text.contains("AC 75.00%"));
        assert!(text.contains("PC 100.00%"));
        assert!(text.contains("KPA 100.00%"));
    }

    #[test]
    fn timings_total_adds_up() {
        let t = Timings {
            extract: Duration::from_millis(1),
            dataset: Duration::from_millis(2),
            train: Duration::from_millis(3),
            score: Duration::from_millis(4),
            threads: StageThreads::uniform(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        assert_eq!(t.threads.extract, 1);
        assert_eq!(t.threads.train, 4);
    }
}
