//! Human-readable attack reporting.

use std::fmt;
use std::time::Duration;

use muxlink_gnn::TrainPhases;
use muxlink_locking::KeyValue;
use serde::{map_get, DeError, Deserialize, Serialize, Value};

use crate::metrics::KeyMetrics;

/// Worker-thread counts used by each pipeline stage (1 = sequential).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageThreads {
    /// Graph extraction (always sequential today).
    pub extract: usize,
    /// Dataset generation.
    pub dataset: usize,
    /// DGCNN training.
    pub train: usize,
    /// Target-link scoring.
    pub score: usize,
}

impl StageThreads {
    /// All stages on `n` threads except extraction (sequential).
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        Self {
            extract: 1,
            dataset: n,
            train: n,
            score: n,
        }
    }
}

/// Wall-clock breakdown of the expensive pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct Timings {
    /// Graph extraction.
    pub extract: Duration,
    /// Dataset generation (link sampling + subgraph extraction).
    pub dataset: Duration,
    /// DGCNN training.
    pub train: Duration,
    /// Target-link scoring.
    pub score: Duration,
    /// Worker threads each stage ran with.
    pub threads: StageThreads,
    /// Per-phase breakdown of the training stage (batch assembly /
    /// forward / backward / optimiser); the remainder of `train` is
    /// shuffling, job drawing and the per-epoch validation passes.
    pub train_phases: TrainPhases,
}

// Hand-written so reports saved before the `train_phases` breakdown
// existed still load: the missing field takes the zeroed default. The
// vendored derive has no `#[serde(default)]`.
impl Deserialize for Timings {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            extract: Deserialize::from_value(map_get(v, "extract")?)?,
            dataset: Deserialize::from_value(map_get(v, "dataset")?)?,
            train: Deserialize::from_value(map_get(v, "train")?)?,
            score: Deserialize::from_value(map_get(v, "score")?)?,
            threads: Deserialize::from_value(map_get(v, "threads")?)?,
            train_phases: match map_get(v, "train_phases") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => TrainPhases::default(),
            },
        })
    }
}

impl Timings {
    /// Sum of all stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.extract + self.dataset + self.train + self.score
    }
}

/// A complete attack report: key metrics, timing, model quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackReport {
    /// Name of the attacked design.
    pub design: String,
    /// Locking scheme label (for presentation only).
    pub scheme: String,
    /// Key size.
    pub key_size: usize,
    /// Deciphered key string (`0`/`1`/`X`).
    pub key_string: String,
    /// Scoring metrics.
    pub metrics: KeyMetrics,
    /// Validation accuracy of the selected GNN.
    pub val_accuracy: f64,
    /// Stage timings.
    pub timings: Timings,
}

impl AttackReport {
    /// Assembles a report from attack artefacts.
    #[must_use]
    pub fn new(
        design: impl Into<String>,
        scheme: impl Into<String>,
        guess: &[KeyValue],
        metrics: KeyMetrics,
        val_accuracy: f64,
        timings: Timings,
    ) -> Self {
        Self {
            design: design.into(),
            scheme: scheme.into(),
            key_size: guess.len(),
            key_string: guess.iter().map(ToString::to_string).collect(),
            metrics,
            val_accuracy,
            timings,
        }
    }
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MuxLink on {} [{}], K={}",
            self.design, self.scheme, self.key_size
        )?;
        writeln!(f, "  key: {}", self.key_string)?;
        let kpa = self
            .metrics
            .kpa_pct()
            .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.2}%"));
        writeln!(
            f,
            "  AC {:.2}%  PC {:.2}%  KPA {}  (correct {}, X {}, total {})",
            self.metrics.accuracy_pct(),
            self.metrics.precision_pct(),
            kpa,
            self.metrics.correct,
            self.metrics.x_count,
            self.metrics.total
        )?;
        writeln!(f, "  GNN val accuracy {:.2}%", self.val_accuracy * 100.0)?;
        writeln!(
            f,
            "  time: extract {:?}, dataset {:?}×{}t, train {:?}×{}t, score {:?}×{}t (total {:?})",
            self.timings.extract,
            self.timings.dataset,
            self.timings.threads.dataset.max(1),
            self.timings.train,
            self.timings.threads.train.max(1),
            self.timings.score,
            self.timings.threads.score.max(1),
            self.timings.total()
        )?;
        let p = &self.timings.train_phases;
        write!(
            f,
            "  train phases: assembly {:?}, forward {:?}, backward {:?}, optimizer {:?}",
            p.assembly, p.forward, p.backward, p.optimizer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_sections() {
        let metrics = KeyMetrics {
            correct: 3,
            x_count: 1,
            total: 4,
        };
        let guess = vec![KeyValue::One, KeyValue::Zero, KeyValue::X, KeyValue::One];
        let r = AttackReport::new("c17", "D-MUX", &guess, metrics, 0.95, Timings::default());
        let text = r.to_string();
        assert!(text.contains("c17"));
        assert!(text.contains("10X1"));
        assert!(text.contains("AC 75.00%"));
        assert!(text.contains("PC 100.00%"));
        assert!(text.contains("KPA 100.00%"));
    }

    #[test]
    fn timings_total_adds_up() {
        let t = Timings {
            extract: Duration::from_millis(1),
            dataset: Duration::from_millis(2),
            train: Duration::from_millis(3),
            score: Duration::from_millis(4),
            threads: StageThreads::uniform(4),
            train_phases: TrainPhases::default(),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        assert_eq!(t.threads.extract, 1);
        assert_eq!(t.threads.train, 4);
    }

    /// Reports saved before the training-phase breakdown existed must
    /// still load; the missing field takes the zeroed default.
    #[test]
    fn pre_train_phases_timings_still_deserialize() {
        let t = Timings {
            extract: Duration::from_millis(1),
            dataset: Duration::from_millis(2),
            train: Duration::from_millis(3),
            score: Duration::from_millis(4),
            threads: StageThreads::uniform(2),
            train_phases: TrainPhases::default(),
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: Timings = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t, "full round trip");
        let phases_json = serde_json::to_string(&TrainPhases::default()).unwrap();
        let legacy = json.replace(&format!(",\"train_phases\":{phases_json}"), "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: Timings = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, t, "missing breakdown falls back to the default");
    }
}
