//! Attack-evaluation metrics (paper §IV): accuracy (AC), precision (PC),
//! key prediction accuracy (KPA) and output Hamming distance (HD).

use muxlink_locking::{apply_key, Key, KeyValue, LockedNetlist};
use muxlink_netlist::{sim, Netlist, NetlistError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Counting outcome of comparing a key guess against the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyMetrics {
    /// Correctly deciphered bits.
    pub correct: usize,
    /// Bits reported as `X` (no decision).
    pub x_count: usize,
    /// Total key bits.
    pub total: usize,
}

impl KeyMetrics {
    /// AC = correct / total.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// PC = (correct + X) / total — an `X` is never a wrong guess.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.correct + self.x_count) as f64 / self.total as f64
        }
    }

    /// KPA = correct / (total − X); `None` when every bit is `X`.
    #[must_use]
    pub fn kpa(&self) -> Option<f64> {
        let decided = self.total - self.x_count;
        if decided == 0 {
            None
        } else {
            Some(self.correct as f64 / decided as f64)
        }
    }

    /// Accuracy in percent.
    #[must_use]
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy() * 100.0
    }

    /// Precision in percent.
    #[must_use]
    pub fn precision_pct(&self) -> f64 {
        self.precision() * 100.0
    }

    /// KPA in percent (`None` when undefined).
    #[must_use]
    pub fn kpa_pct(&self) -> Option<f64> {
        self.kpa().map(|k| k * 100.0)
    }
}

/// Scores a guess against the true key.
///
/// # Panics
///
/// Panics when lengths differ (caller bug, not data dependent).
#[must_use]
pub fn score_key(guess: &[KeyValue], truth: &Key) -> KeyMetrics {
    assert_eq!(guess.len(), truth.len(), "guess/key length mismatch");
    let mut correct = 0;
    let mut x_count = 0;
    for (i, v) in guess.iter().enumerate() {
        match v.as_bool() {
            None => x_count += 1,
            Some(b) if b == truth.bit(i) => correct += 1,
            Some(_) => {}
        }
    }
    KeyMetrics {
        correct,
        x_count,
        total: guess.len(),
    }
}

/// Output Hamming distance between the original design and the design
/// recovered with `guess` (paper Fig. 8; 100 000 random patterns with
/// Synopsys VCS in the original, bit-parallel simulation here).
///
/// Undecided (`X`) bits are handled as the paper does: the HD is measured
/// for every remaining assignment and averaged. Beyond
/// `max_enumerated_x` unknown bits, `2^max_enumerated_x` random
/// assignments are sampled instead (deterministic in `seed`).
///
/// # Errors
///
/// Propagates simulation/interface errors from the netlist layer.
pub fn hamming_with_guess(
    original: &Netlist,
    locked: &LockedNetlist,
    guess: &[KeyValue],
    patterns: usize,
    max_enumerated_x: u32,
    seed: u64,
) -> Result<f64, NetlistError> {
    let x_positions: Vec<usize> = guess
        .iter()
        .enumerate()
        .filter(|(_, v)| **v == KeyValue::X)
        .map(|(i, _)| i)
        .collect();
    let assignments: Vec<Vec<bool>> = if x_positions.len() as u32 <= max_enumerated_x {
        (0..(1usize << x_positions.len()))
            .map(|m| (0..x_positions.len()).map(|b| m >> b & 1 == 1).collect())
            .collect()
    } else {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        (0..(1usize << max_enumerated_x))
            .map(|_| (0..x_positions.len()).map(|_| rng.gen()).collect())
            .collect()
    };

    let mut total = 0.0;
    for assignment in &assignments {
        let mut bits: Vec<bool> = Vec::with_capacity(guess.len());
        let mut xi = 0;
        for v in guess {
            match v.as_bool() {
                Some(b) => bits.push(b),
                None => {
                    bits.push(assignment[xi]);
                    xi += 1;
                }
            }
        }
        let recovered = apply_key(locked, &Key::from_bits(bits)).map_err(|e| match e {
            muxlink_locking::LockError::Netlist(n) => n,
            other => NetlistError::InterfaceMismatch(other.to_string()),
        })?;
        let hd = sim::hamming_distance(original, &recovered, patterns, seed)?;
        total += hd.fraction();
    }
    Ok(total / assignments.len() as f64 * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, LockOptions};

    #[test]
    fn metric_formulas() {
        let truth = Key::from_bits(vec![true, false, true, true]);
        let guess = vec![KeyValue::One, KeyValue::One, KeyValue::X, KeyValue::One];
        let m = score_key(&guess, &truth);
        assert_eq!(m.correct, 2);
        assert_eq!(m.x_count, 1);
        assert_eq!(m.total, 4);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.kpa().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_x_has_undefined_kpa_and_full_precision() {
        let truth = Key::from_bits(vec![false, true]);
        let guess = vec![KeyValue::X, KeyValue::X];
        let m = score_key(&guess, &truth);
        assert_eq!(m.kpa(), None);
        assert!((m.precision() - 1.0).abs() < 1e-12);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn perfect_guess_gives_zero_hd() {
        let design = SynthConfig::new("d", 12, 6, 150).generate(3);
        let locked = dmux::lock(&design, &LockOptions::new(6, 1)).unwrap();
        let hd = hamming_with_guess(&design, &locked, &locked.key.to_values(), 2048, 8, 0).unwrap();
        assert_eq!(hd, 0.0);
    }

    #[test]
    fn wrong_guess_gives_positive_hd() {
        let design = SynthConfig::new("d", 12, 6, 150).generate(3);
        let locked = dmux::lock(&design, &LockOptions::new(6, 1)).unwrap();
        let wrong: Vec<KeyValue> = locked
            .key
            .bits()
            .iter()
            .map(|&b| KeyValue::from_bool(!b))
            .collect();
        let hd = hamming_with_guess(&design, &locked, &wrong, 2048, 8, 0).unwrap();
        assert!(hd > 0.0);
    }

    #[test]
    fn x_bits_average_over_assignments() {
        let design = SynthConfig::new("d", 12, 6, 150).generate(4);
        let locked = dmux::lock(&design, &LockOptions::new(4, 9)).unwrap();
        let mut guess = locked.key.to_values();
        guess[0] = KeyValue::X;
        let hd = hamming_with_guess(&design, &locked, &guess, 2048, 8, 0).unwrap();
        // One X bit: average of (correct assignment → 0 HD) and (wrong →
        // some HD ≥ 0); the result sits strictly between.
        let all_wrong = {
            let mut g = locked.key.to_values();
            g[0] = KeyValue::from_bool(!locked.key.bit(0));
            hamming_with_guess(&design, &locked, &g, 2048, 8, 0).unwrap()
        };
        assert!(hd <= all_wrong);
        assert!((hd - all_wrong / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_fallback_for_many_x() {
        let design = SynthConfig::new("d", 14, 6, 200).generate(5);
        let locked = dmux::lock(&design, &LockOptions::new(12, 2)).unwrap();
        let guess = vec![KeyValue::X; 12];
        // max_enumerated_x = 3 → samples 8 random assignments.
        let hd = hamming_with_guess(&design, &locked, &guess, 512, 3, 7).unwrap();
        assert!(hd.is_finite());
    }
}
