//! The one-shot MuxLink pipeline entry points: extract → self-supervise
//! → score → post-process in a single call.
//!
//! Since the staged API redesign, [`score_design`] and [`attack`] are
//! thin wrappers over [`crate::AttackSession`] — the
//! session is the primary surface (stage checkpoints, progress
//! observation, cancellation, suite runs); these functions remain for
//! callers that want the whole pipeline as one expression. Both paths
//! are bit-identical for any thread count.

use std::time::Instant;

use muxlink_gnn::TrainReport;
use muxlink_graph::{extract, ExtractedDesign};
use muxlink_locking::KeyValue;
use muxlink_netlist::Netlist;
use serde::{Deserialize, Serialize};

use crate::postprocess::{recover_key, MuxScores};
use crate::progress::NoProgress;
use crate::report::Timings;
use crate::session::AttackSession;
use crate::{AttackError, MuxLinkConfig};

/// A trained-and-scored design: everything the cheap post-processing stage
/// needs, decoupled so threshold sweeps (Fig. 9) reuse one model.
/// Serializable, like every stage artifact of the session API.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredDesign {
    /// The extracted graph and MUX candidates.
    pub extracted: ExtractedDesign,
    /// Per-MUX likelihoods `(l0, l1)` aligned with `extracted.muxes`.
    pub scores: MuxScores,
    /// Number of key bits in the design.
    pub key_len: usize,
    /// Training statistics of the underlying DGCNN.
    pub train_report: TrainReport,
    /// Chosen SortPooling size.
    pub k: usize,
    /// Wall-clock breakdown of the expensive stages.
    pub timings: Timings,
}

/// Result of a full attack: the recovered key plus the scored design for
/// further analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// One value per key bit (`X` = no decision).
    pub guess: Vec<KeyValue>,
    /// The reusable scored design.
    pub scored: ScoredDesign,
}

/// Runs the expensive stages: graph extraction, dataset generation, DGCNN
/// training and target-link scoring — the full
/// [`crate::AttackSession`] chain in one call.
///
/// # Errors
///
/// [`AttackError::Extract`] for malformed locked designs,
/// [`AttackError::NoKeyMuxes`] when there is nothing to attack,
/// [`AttackError::EmptyDataset`] when no training links could be
/// sampled, and [`AttackError::ThreadPool`] when a dedicated pool of
/// `cfg.threads` workers could not be built.
pub fn score_design(
    netlist: &Netlist,
    key_input_names: &[String],
    cfg: &MuxLinkConfig,
) -> Result<ScoredDesign, AttackError> {
    AttackSession::new(netlist, key_input_names, cfg.clone()).run(&NoProgress)
}

impl ScoredDesign {
    /// Post-processes the stored likelihoods at threshold `th` — cheap and
    /// re-runnable (Fig. 9 sweeps thresholds without retraining).
    #[must_use]
    pub fn recover_key(&self, th: f64) -> Vec<KeyValue> {
        recover_key(&self.extracted, &self.scores, self.key_len, th)
    }
}

/// Scores every MUX candidate with a hand-crafted link-prediction
/// heuristic instead of the GNN — the ablation MuxLink's methodology
/// implicitly argues against (SEAL: learned heuristics beat fixed ones).
///
/// Raw heuristic values are normalised per MUX (`l / (l0 + l1)`) so the
/// Algorithm-1 threshold semantics carry over.
///
/// # Errors
///
/// As for [`score_design`] minus the dataset/training failure modes.
pub fn score_design_with_heuristic(
    netlist: &Netlist,
    key_input_names: &[String],
    heuristic: muxlink_graph::heuristics::Heuristic,
) -> Result<ScoredDesign, AttackError> {
    let t0 = Instant::now();
    let extracted = extract(netlist, key_input_names)?;
    if extracted.muxes.is_empty() {
        return Err(AttackError::NoKeyMuxes);
    }
    let mut scores: MuxScores = Vec::with_capacity(extracted.muxes.len());
    for m in &extracted.muxes {
        let raw0 = heuristic.score(&extracted.graph, m.link0());
        let raw1 = heuristic.score(&extracted.graph, m.link1());
        let sum = raw0 + raw1;
        let (l0, l1) = if sum > 0.0 {
            (raw0 / sum, raw1 / sum)
        } else {
            (0.5, 0.5)
        };
        scores.push((l0, l1));
    }
    let elapsed = t0.elapsed();
    Ok(ScoredDesign {
        extracted,
        scores,
        key_len: key_input_names.len(),
        train_report: TrainReport {
            history: Vec::new(),
            best_epoch: 0,
            best_val_accuracy: f64::NAN,
        },
        k: 0,
        timings: Timings {
            extract: elapsed,
            ..Timings::default()
        },
    })
}

/// Full attack at the configured threshold.
///
/// # Errors
///
/// As for [`score_design`].
pub fn attack(
    netlist: &Netlist,
    key_input_names: &[String],
    cfg: &MuxLinkConfig,
) -> Result<AttackOutcome, AttackError> {
    let scored = score_design(netlist, key_input_names, cfg)?;
    let guess = scored.recover_key(cfg.th);
    Ok(AttackOutcome { guess, scored })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score_key;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, symmetric, LockOptions};

    fn quick() -> MuxLinkConfig {
        MuxLinkConfig::quick()
    }

    #[test]
    fn attack_runs_end_to_end_on_dmux() {
        let design = SynthConfig::new("d", 16, 8, 260).generate(11);
        let locked = dmux::lock(&design, &LockOptions::new(8, 3)).unwrap();
        let out = attack(&locked.netlist, &locked.key_input_names(), &quick()).unwrap();
        assert_eq!(out.guess.len(), 8);
        let m = score_key(&out.guess, &locked.key);
        // With the quick profile we still expect far-better-than-random
        // behaviour on a small design.
        assert!(m.precision() > 0.5, "precision {}", m.precision());
    }

    #[test]
    fn attack_runs_end_to_end_on_symmetric() {
        let design = SynthConfig::new("d", 16, 8, 260).generate(12);
        let locked = symmetric::lock(&design, &LockOptions::new(8, 3)).unwrap();
        let out = attack(&locked.netlist, &locked.key_input_names(), &quick()).unwrap();
        assert_eq!(out.guess.len(), 8);
    }

    #[test]
    fn scored_design_rethresholds_without_retraining() {
        let design = SynthConfig::new("d", 16, 8, 220).generate(13);
        let locked = dmux::lock(&design, &LockOptions::new(6, 5)).unwrap();
        let scored = score_design(&locked.netlist, &locked.key_input_names(), &quick()).unwrap();
        let loose = scored.recover_key(0.0);
        let strict = scored.recover_key(1.0);
        let x_loose = loose.iter().filter(|v| **v == KeyValue::X).count();
        let x_strict = strict.iter().filter(|v| **v == KeyValue::X).count();
        assert!(
            x_strict >= x_loose,
            "stricter th must abstain at least as much"
        );
        assert_eq!(x_strict, 6, "th=1.0 abstains on every bit");
    }

    #[test]
    fn deterministic_given_seed() {
        let design = SynthConfig::new("d", 14, 6, 180).generate(14);
        let locked = dmux::lock(&design, &LockOptions::new(4, 7)).unwrap();
        let a = attack(&locked.netlist, &locked.key_input_names(), &quick()).unwrap();
        let b = attack(&locked.netlist, &locked.key_input_names(), &quick()).unwrap();
        assert_eq!(a.guess, b.guess);
        assert_eq!(a.scored.scores, b.scored.scores);
    }

    #[test]
    fn thread_count_does_not_change_attack_outcome() {
        let design = SynthConfig::new("d", 14, 6, 200).generate(18);
        let locked = dmux::lock(&design, &LockOptions::new(6, 3)).unwrap();
        let names = locked.key_input_names();
        let a = attack(&locked.netlist, &names, &quick().with_threads(1)).unwrap();
        let b = attack(&locked.netlist, &names, &quick().with_threads(4)).unwrap();
        assert_eq!(a.guess, b.guess, "key guess must not depend on threads");
        assert_eq!(
            a.scored.scores, b.scored.scores,
            "scores must be bit-identical"
        );
        assert_eq!(
            a.scored.train_report, b.scored.train_report,
            "training history must be bit-identical"
        );
        assert_eq!(a.scored.timings.threads.train, 1);
        assert_eq!(b.scored.timings.threads.train, 4);
        assert_eq!(
            b.scored.timings.threads.extract, 1,
            "extraction is sequential"
        );
    }

    #[test]
    fn heuristic_scoring_is_fast_and_thresholdable() {
        use muxlink_graph::heuristics::Heuristic;
        let design = SynthConfig::new("d", 16, 8, 300).generate(21);
        let locked = dmux::lock(&design, &LockOptions::new(12, 4)).unwrap();
        let scored = score_design_with_heuristic(
            &locked.netlist,
            &locked.key_input_names(),
            Heuristic::ResourceAllocation,
        )
        .unwrap();
        assert_eq!(scored.scores.len(), locked.mux_instances().len());
        for &(l0, l1) in &scored.scores {
            assert!((0.0..=1.0).contains(&l0) && (0.0..=1.0).contains(&l1));
            assert!((l0 + l1 - 1.0).abs() < 1e-9);
        }
        // Full-abstain at the strictest threshold.
        let strict = scored.recover_key(1.01);
        assert!(strict.iter().all(|v| *v == KeyValue::X));
    }

    #[test]
    fn unlocked_design_is_rejected() {
        let design = SynthConfig::new("d", 10, 4, 100).generate(15);
        let err = attack(&design, &[], &quick()).unwrap_err();
        assert!(matches!(err, AttackError::NoKeyMuxes));
    }

    #[test]
    fn timings_are_populated() {
        let design = SynthConfig::new("d", 12, 6, 150).generate(16);
        let locked = dmux::lock(&design, &LockOptions::new(4, 2)).unwrap();
        let scored = score_design(&locked.netlist, &locked.key_input_names(), &quick()).unwrap();
        assert!(scored.timings.total() > std::time::Duration::ZERO);
        assert!(scored.k >= 10);
    }
}
