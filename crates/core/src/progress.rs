//! Observation and cooperative cancellation for staged attacks.
//!
//! A [`Progress`] implementation rides along an
//! [`AttackSession`](crate::AttackSession) (or the [`run_suite`]
//! driver): the session reports stage transitions and per-epoch training
//! statistics, and polls [`Progress::cancelled`] at batch boundaries
//! during training and between scoring chunks. Observation never
//! perturbs results — an observed, uncancelled run is bit-identical to
//! an unobserved one for any thread count.
//!
//! [`run_suite`]: crate::run_suite

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use muxlink_gnn::EpochStats;

/// The pipeline stages a session advances through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Stage {
    /// Netlist → gate graph + MUX candidates. Reported by
    /// [`AttackSession::run`](crate::AttackSession::run); the standalone
    /// [`AttackSession::extract`](crate::AttackSession::extract) takes
    /// no observer (it is the cheap, synchronous stage).
    Extract,
    /// Self-supervised dataset build + SortPool-`k` selection.
    Prepare,
    /// DGCNN training.
    Train,
    /// Target-link scoring.
    Score,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Extract => "extract",
            Self::Prepare => "prepare",
            Self::Train => "train",
            Self::Score => "score",
        };
        write!(f, "{name}")
    }
}

/// Observer + cooperative-cancellation hooks for a staged attack.
///
/// All methods have no-op defaults; implement only what you need.
/// Implementations must be `Sync`: hooks are invoked from inside rayon
/// scopes (always from the sequential spine of each stage, never from
/// worker closures, so cheap interior mutability like atomics suffices).
pub trait Progress: Sync {
    /// A stage is about to run.
    fn stage_started(&self, stage: Stage) {
        let _ = stage;
    }

    /// A stage finished, with its wall-clock time.
    fn stage_finished(&self, stage: Stage, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// One training epoch finished.
    fn epoch_finished(&self, stats: &EpochStats) {
        let _ = stats;
    }

    /// Polled at training batch boundaries and between scoring chunks;
    /// returning `true` aborts the session with
    /// [`AttackError::Cancelled`](crate::AttackError::Cancelled).
    fn cancelled(&self) -> bool {
        false
    }
}

/// The silent observer: reports nothing, never cancels.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl Progress for NoProgress {}

/// A thread-safe cancellation flag implementing [`Progress`].
///
/// Clone it (cheap, shared state) and hand one clone to the session while
/// another thread keeps the original to call [`CancelFlag::cancel`].
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-triggered flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; the session stops at its next check point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

impl Progress for CancelFlag {
    fn cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bridges a [`Progress`] observer into the trainer's
/// [`TrainControl`](muxlink_gnn::TrainControl) hooks.
pub(crate) struct TrainBridge<'a>(pub &'a dyn Progress);

impl muxlink_gnn::TrainControl for TrainBridge<'_> {
    fn epoch_finished(&self, stats: &EpochStats) {
        self.0.epoch_finished(stats);
    }

    fn cancelled(&self) -> bool {
        self.0.cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let flag = CancelFlag::new();
        let clone = flag.clone();
        assert!(!clone.cancelled());
        flag.cancel();
        assert!(clone.cancelled());
    }

    #[test]
    fn stage_labels_are_stable() {
        assert_eq!(Stage::Extract.to_string(), "extract");
        assert_eq!(Stage::Prepare.to_string(), "prepare");
        assert_eq!(Stage::Train.to_string(), "train");
        assert_eq!(Stage::Score.to_string(), "score");
    }
}
