use serde::{map_get, DeError, Deserialize, Serialize, Value};

/// All tunables of the MuxLink attack. Defaults are the paper's settings;
/// [`MuxLinkConfig::quick`] is a CPU-friendly scale-down used by tests and
/// the default benchmark harness (every figure binary accepts
/// `--paper-scale` to restore the published constants).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MuxLinkConfig {
    /// Enclosing-subgraph hop count (paper default: 3, Fig. 10 sweeps 1–4).
    pub h: usize,
    /// Post-processing decision threshold (paper default: 0.01, Fig. 9
    /// sweeps 0–1).
    pub th: f64,
    /// Maximum sampled training links (paper: 100 000).
    pub max_train_links: usize,
    /// Validation fraction (paper: 10 %).
    pub val_fraction: f64,
    /// Optional cap on subgraph node count (None = unlimited, as in the
    /// paper; the quick profile caps for CPU-time hygiene).
    pub max_subgraph_nodes: Option<usize>,
    /// Training epochs (paper: 100).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// SortPooling percentile: `k` is chosen so this fraction of training
    /// subgraphs has at most `k` nodes (paper: 0.6).
    pub k_percentile: f64,
    /// Master seed (sampling, initialisation, shuffling, dropout).
    pub seed: u64,
    /// Worker threads for dataset build, training and scoring
    /// (0 = all cores). Results are bit-identical for any value: every
    /// parallel stage reduces in a fixed order.
    pub threads: usize,
    /// Streaming chunk size of the arena-pooled sample paths: at most
    /// this many candidate links are extracted (and, at scoring time,
    /// resident as samples) at once; the scorer recycles one
    /// [`SampleArena`](muxlink_graph::SampleArena) between chunks, so
    /// peak resident sample bytes are bounded by the chunk, not the
    /// design's candidate-link count. `0` restores the all-resident
    /// behaviour (every target subgraph materialised up front).
    /// Results are bit-identical for any value — chunking only bounds
    /// memory.
    pub sample_chunk: usize,
    /// Train with the per-sample reference loop instead of the default
    /// block-diagonal batched step. Bit-identical results either way
    /// (with `dh_keep` at 1.0); the reference loop parallelises across
    /// samples, the batched step removes per-sample dispatch overhead.
    pub reference_trainer: bool,
    /// Fraction of tanh-gradient entries kept per GC layer ≥ 1 in the
    /// batched trainer (top-k by magnitude). `1.0` = exact (the
    /// default); lower values are a tolerance-pinned approximation.
    pub dh_keep: f32,
    /// Rebuild the batched trainer's layer-0 propagated features from
    /// the two-hot histograms every epoch instead of consuming the
    /// epoch-invariant `S·X` plans cached in the sample arena at
    /// dataset build. Bit-identical results either way — the rebuild
    /// kernels are the executable reference of the cached path; `false`
    /// (the default) uses the cache.
    pub layer0_rebuild: bool,
    /// Canonicalize the target netlist with the cleanup pass pipeline
    /// (constant fold, buffer collapse, MUX simplification, dead-logic
    /// elimination) before structural extraction — both when attacking
    /// and when re-verifying a design against a trained session. `false`
    /// (the default) attacks the netlist exactly as given.
    pub canonicalize: bool,
}

// Hand-written so checkpoints saved before the `sample_chunk`,
// `reference_trainer`, `dh_keep`, `layer0_rebuild` and `canonicalize`
// knobs existed
// still load: a missing field takes the production default (none of
// these change the default path's results, so old artifacts re-score to
// the same bits). The vendored derive has no `#[serde(default)]`.
impl Deserialize for MuxLinkConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            h: Deserialize::from_value(map_get(v, "h")?)?,
            th: Deserialize::from_value(map_get(v, "th")?)?,
            max_train_links: Deserialize::from_value(map_get(v, "max_train_links")?)?,
            val_fraction: Deserialize::from_value(map_get(v, "val_fraction")?)?,
            max_subgraph_nodes: Deserialize::from_value(map_get(v, "max_subgraph_nodes")?)?,
            epochs: Deserialize::from_value(map_get(v, "epochs")?)?,
            batch_size: Deserialize::from_value(map_get(v, "batch_size")?)?,
            learning_rate: Deserialize::from_value(map_get(v, "learning_rate")?)?,
            k_percentile: Deserialize::from_value(map_get(v, "k_percentile")?)?,
            seed: Deserialize::from_value(map_get(v, "seed")?)?,
            threads: Deserialize::from_value(map_get(v, "threads")?)?,
            sample_chunk: match map_get(v, "sample_chunk") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => MuxLinkConfig::default().sample_chunk,
            },
            reference_trainer: match map_get(v, "reference_trainer") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => MuxLinkConfig::default().reference_trainer,
            },
            dh_keep: match map_get(v, "dh_keep") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => MuxLinkConfig::default().dh_keep,
            },
            layer0_rebuild: match map_get(v, "layer0_rebuild") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => MuxLinkConfig::default().layer0_rebuild,
            },
            canonicalize: match map_get(v, "canonicalize") {
                Ok(x) => Deserialize::from_value(x)?,
                Err(_) => MuxLinkConfig::default().canonicalize,
            },
        })
    }
}

impl Default for MuxLinkConfig {
    fn default() -> Self {
        Self {
            h: 3,
            th: 0.01,
            max_train_links: 100_000,
            val_fraction: 0.10,
            max_subgraph_nodes: None,
            epochs: 100,
            batch_size: 32,
            learning_rate: 1e-4,
            k_percentile: 0.6,
            seed: 0,
            threads: 0,
            sample_chunk: 1024,
            reference_trainer: false,
            dh_keep: 1.0,
            layer0_rebuild: false,
            canonicalize: false,
        }
    }
}

impl MuxLinkConfig {
    /// The paper's configuration (`h = 3`, `th = 0.01`, 100 epochs,
    /// ≤ 100 000 links).
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// A scaled-down configuration that finishes in seconds on a CPU while
    /// preserving every algorithmic step; used by tests, examples and the
    /// default benchmark profiles.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            h: 3,
            th: 0.01,
            max_train_links: 1200,
            val_fraction: 0.10,
            max_subgraph_nodes: Some(200),
            epochs: 40,
            batch_size: 32,
            learning_rate: 1e-3,
            k_percentile: 0.6,
            seed: 0,
            threads: 0,
            sample_chunk: 1024,
            reference_trainer: false,
            dh_keep: 1.0,
            layer0_rebuild: false,
            canonicalize: false,
        }
    }

    /// Returns a copy with a different hop count (Fig. 10 sweeps).
    #[must_use]
    pub fn with_h(mut self, h: usize) -> Self {
        self.h = h;
        self
    }

    /// Returns a copy with a different threshold (Fig. 9 sweeps).
    #[must_use]
    pub fn with_th(mut self, th: f64) -> Self {
        self.th = th;
        self
    }

    /// Returns a copy with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different worker-thread count (0 = all
    /// cores).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different streaming chunk size (0 = keep
    /// every sample resident at once). Never changes results.
    #[must_use]
    pub fn with_sample_chunk(mut self, sample_chunk: usize) -> Self {
        self.sample_chunk = sample_chunk;
        self
    }

    /// Returns a copy with a different minibatch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns a copy with netlist canonicalization toggled.
    #[must_use]
    pub fn with_canonicalize(mut self, canonicalize: bool) -> Self {
        self.canonicalize = canonicalize;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_publication() {
        let c = MuxLinkConfig::paper();
        assert_eq!(c.h, 3);
        assert!((c.th - 0.01).abs() < 1e-12);
        assert_eq!(c.max_train_links, 100_000);
        assert_eq!(c.epochs, 100);
        assert!((c.learning_rate - 1e-4).abs() < 1e-9);
        assert!((c.k_percentile - 0.6).abs() < 1e-12);
        assert!((c.val_fraction - 0.10).abs() < 1e-12);
    }

    #[test]
    fn builders_change_single_fields() {
        let c = MuxLinkConfig::quick()
            .with_h(4)
            .with_th(0.5)
            .with_seed(9)
            .with_threads(2);
        assert_eq!(c.h, 4);
        assert!((c.th - 0.5).abs() < 1e-12);
        assert_eq!(c.seed, 9);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn default_uses_all_cores() {
        assert_eq!(MuxLinkConfig::paper().threads, 0);
        assert_eq!(MuxLinkConfig::quick().threads, 0);
    }

    #[test]
    fn serde_round_trips() {
        let cfg = MuxLinkConfig::quick()
            .with_seed(9)
            .with_threads(2)
            .with_sample_chunk(77);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MuxLinkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    /// Checkpoints written before the `sample_chunk` knob existed must
    /// still load; the missing field takes the production default.
    #[test]
    fn pre_sample_chunk_checkpoints_still_deserialize() {
        let cfg = MuxLinkConfig::quick().with_seed(4);
        let json = serde_json::to_string(&cfg).unwrap();
        let legacy = json.replace(",\"sample_chunk\":1024", "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: MuxLinkConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.sample_chunk, MuxLinkConfig::default().sample_chunk);
        assert_eq!(back.seed, 4);
        assert_eq!(
            MuxLinkConfig {
                sample_chunk: cfg.sample_chunk,
                ..back
            },
            cfg
        );
    }

    /// Checkpoints written before the batched-trainer knobs existed must
    /// still load with the production defaults (batched, exact).
    #[test]
    fn pre_batched_trainer_checkpoints_still_deserialize() {
        let cfg = MuxLinkConfig::quick().with_seed(6);
        let json = serde_json::to_string(&cfg).unwrap();
        let legacy = json
            .replace(",\"reference_trainer\":false", "")
            .replace(",\"dh_keep\":1.0", "");
        assert_ne!(legacy, json, "test must actually strip the fields");
        let back: MuxLinkConfig = serde_json::from_str(&legacy).unwrap();
        assert!(!back.reference_trainer);
        assert_eq!(back.dh_keep, 1.0);
        assert_eq!(back.seed, 6);
    }

    /// Checkpoints written before the `canonicalize` knob existed must
    /// still load; the missing knob takes the production default (attack
    /// the netlist exactly as given).
    #[test]
    fn pre_canonicalize_checkpoints_still_deserialize() {
        let cfg = MuxLinkConfig::quick().with_seed(3);
        let json = serde_json::to_string(&cfg).unwrap();
        let legacy = json.replace(",\"canonicalize\":false", "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: MuxLinkConfig = serde_json::from_str(&legacy).unwrap();
        assert!(!back.canonicalize);
        assert_eq!(back, cfg);
    }

    /// Checkpoints written before the cached layer-0 plans existed must
    /// still load; the missing knob takes the production default
    /// (cached plans on — bit-identical to the rebuild they replace).
    #[test]
    fn pre_layer0_plan_checkpoints_still_deserialize() {
        let cfg = MuxLinkConfig::quick().with_seed(8);
        let json = serde_json::to_string(&cfg).unwrap();
        let legacy = json.replace(",\"layer0_rebuild\":false", "");
        assert_ne!(legacy, json, "test must actually strip the field");
        let back: MuxLinkConfig = serde_json::from_str(&legacy).unwrap();
        assert!(!back.layer0_rebuild);
        assert_eq!(back.seed, 8);
        assert_eq!(back, cfg);
    }
}
