//! Key-recovery post-processing (paper §III-E, Algorithm 1).
//!
//! The attacker groups the key MUXes into the localities the defenses
//! construct — two MUXes sharing the same unordered data-wire pair form an
//! S1/S4/S5-style pair; a lone MUX is an S2/S3-style single — and converts
//! the GNN likelihood scores into key bits with a decision threshold `th`.
//! Bits whose evidence is weaker than `th` are reported as `X`
//! (no decision), which the precision metric counts as non-wrong.

use muxlink_graph::{ExtractedDesign, MuxCandidate};
use muxlink_locking::KeyValue;
use serde::{Deserialize, Serialize};

/// How a group of MUXes was interpreted during post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalityKind {
    /// Two MUXes sharing a data-wire pair, two key bits (S1/S5).
    PairedTwoKeys,
    /// Two MUXes sharing a data-wire pair and one key bit (S4).
    PairedSharedKey,
    /// A single MUX with its own key bit (S2/S3/naive).
    Single,
}

/// Per-MUX likelihood scores: `(l0, l1)` for the links selected by key
/// values 0 and 1 respectively.
pub type MuxScores = Vec<(f64, f64)>;

/// Runs Algorithm 1 over the scored design and returns one [`KeyValue`]
/// per key bit.
///
/// `scores[i]` must correspond to `extracted.muxes[i]`. Bits not covered
/// by any MUX (impossible for well-formed designs) stay `X`.
///
/// # Panics
///
/// Panics when `scores.len() != extracted.muxes.len()`.
#[must_use]
pub fn recover_key(
    extracted: &ExtractedDesign,
    scores: &MuxScores,
    key_len: usize,
    th: f64,
) -> Vec<KeyValue> {
    assert_eq!(
        scores.len(),
        extracted.muxes.len(),
        "one score pair per MUX required"
    );
    let mut key = vec![KeyValue::X; key_len];
    for group in group_localities(&extracted.muxes) {
        match group {
            Grouped::Pair(i, j) => {
                decide_pair(
                    &extracted.muxes[i],
                    scores[i],
                    &extracted.muxes[j],
                    scores[j],
                    th,
                    &mut key,
                );
            }
            Grouped::Single(i) => {
                let m = &extracted.muxes[i];
                let (l0, l1) = scores[i];
                let delta = (l0 - l1).abs();
                if delta >= th && l0 != l1 {
                    key[m.key_bit] = if l0 > l1 {
                        KeyValue::Zero
                    } else {
                        KeyValue::One
                    };
                }
            }
        }
    }
    key
}

/// Classifies the locality structure of each group (used for reporting).
#[must_use]
pub fn classify_localities(extracted: &ExtractedDesign) -> Vec<LocalityKind> {
    group_localities(&extracted.muxes)
        .into_iter()
        .map(|g| match g {
            Grouped::Pair(i, j) => {
                if extracted.muxes[i].key_bit == extracted.muxes[j].key_bit {
                    LocalityKind::PairedSharedKey
                } else {
                    LocalityKind::PairedTwoKeys
                }
            }
            Grouped::Single(_) => LocalityKind::Single,
        })
        .collect()
}

enum Grouped {
    Pair(usize, usize),
    Single(usize),
}

/// Groups MUX indices into pairs sharing the same unordered data-source
/// set; leftovers are singles.
fn group_localities(muxes: &[MuxCandidate]) -> Vec<Grouped> {
    let mut by_sources: std::collections::HashMap<(u32, u32), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, m) in muxes.iter().enumerate() {
        let key = if m.src0 <= m.src1 {
            (m.src0, m.src1)
        } else {
            (m.src1, m.src0)
        };
        by_sources.entry(key).or_default().push(i);
    }
    let mut groups: Vec<Grouped> = Vec::new();
    let mut entries: Vec<_> = by_sources.into_iter().collect();
    entries.sort_by_key(|(k, _)| *k);
    for (_, mut idxs) in entries {
        idxs.sort_unstable();
        // Pop pairs off the tail; a leftover below two is a single.
        while let [.., i, j] = idxs[..] {
            idxs.truncate(idxs.len() - 2);
            groups.push(Grouped::Pair(i, j));
        }
        for i in idxs {
            groups.push(Grouped::Single(i));
        }
    }
    groups
}

/// Algorithm 1 for a paired locality: pick the MUX with the larger
/// likelihood gap, let it choose its own wire, and force the partner onto
/// the *other* wire of the shared pair.
fn decide_pair(
    mi: &MuxCandidate,
    (li0, li1): (f64, f64),
    mj: &MuxCandidate,
    (lj0, lj1): (f64, f64),
    th: f64,
    key: &mut [KeyValue],
) {
    let d1 = (li0 - li1).abs();
    let d2 = (lj0 - lj1).abs();
    if d1 < th && d2 < th {
        return; // both X (Algorithm 1 lines 18–19)
    }
    if d1 == d2 {
        return; // exact tie: Algorithm 1 lines 16–17 abstain
    }
    // Winner chooses the wire with the larger likelihood; partner crosses.
    let (winner, wi_scores, partner) = if d1 > d2 {
        (mi, (li0, li1), mj)
    } else {
        (mj, (lj0, lj1), mi)
    };
    let winner_src = if wi_scores.0 > wi_scores.1 {
        key[winner.key_bit] = KeyValue::Zero;
        winner.src0
    } else {
        key[winner.key_bit] = KeyValue::One;
        winner.src1
    };
    // The defenses interconnect true cones: the partner passes the other
    // wire of the shared pair.
    let partner_value = if partner.src0 == winner_src {
        // partner's 0-wire is the one the winner consumed → partner is 1.
        KeyValue::One
    } else {
        KeyValue::Zero
    };
    if winner.key_bit == partner.key_bit {
        // S4: one bit drives both MUXes — the winner already set it, and
        // by construction the partner agrees.
        return;
    }
    key[partner.key_bit] = partner_value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_graph::graph::{CircuitGraph, Link};
    use muxlink_netlist::{GateId, GateType};

    /// Builds a dummy extracted design with the given MUX candidates
    /// (graph content is irrelevant for post-processing).
    fn design(muxes: Vec<MuxCandidate>) -> ExtractedDesign {
        let n = 8;
        ExtractedDesign {
            graph: CircuitGraph::from_edges(
                (0..n).map(GateId::from_index).collect(),
                vec![GateType::And; n],
                &[Link::new(0, 1)],
            ),
            muxes,
        }
    }

    fn mux(key_bit: usize, sink: u32, src0: u32, src1: u32) -> MuxCandidate {
        MuxCandidate {
            mux_gate: GateId::from_index(100 + key_bit),
            key_bit,
            sink,
            src0,
            src1,
        }
    }

    #[test]
    fn single_mux_high_l0_gives_zero() {
        let d = design(vec![mux(0, 5, 1, 2)]);
        let key = recover_key(&d, &vec![(0.9, 0.2)], 1, 0.01);
        assert_eq!(key, vec![KeyValue::Zero]);
        let key = recover_key(&d, &vec![(0.1, 0.8)], 1, 0.01);
        assert_eq!(key, vec![KeyValue::One]);
    }

    #[test]
    fn single_mux_below_threshold_is_x() {
        let d = design(vec![mux(0, 5, 1, 2)]);
        let key = recover_key(&d, &vec![(0.50, 0.505)], 1, 0.01);
        assert_eq!(key, vec![KeyValue::X]);
    }

    #[test]
    fn paper_worked_example() {
        // Fig. 5 ⑥: δ1 = |1.0 − 0.8| = 0.2, δ2 = |0.9 − 0.4| = 0.5 with
        // th = 0.01 ⇒ the second MUX decides; its higher link passes the
        // true wire and the partner crosses.
        // Encode: m_i (bit 0) sources {A=1, B=2}: l(A→gi)=1.0, l(B→gi)=0.8.
        // m_j (bit 1) sources {B=2, A=1} with l0 = l(B→gj)=0.9 (bit 1 = 0
        // passes B? — we wire src0 = 2), l1 = l(A→gj)=0.4.
        let d = design(vec![mux(0, 5, 1, 2), mux(1, 6, 2, 1)]);
        let key = recover_key(&d, &vec![(1.0, 0.8), (0.9, 0.4)], 2, 0.01);
        // Winner m_j: l0 > l1 ⇒ bit1 = 0 (passes src0 = node 2 = B).
        // Partner m_i must pass A (node 1) = its src0 ⇒ bit0 = 0.
        assert_eq!(key, vec![KeyValue::Zero, KeyValue::Zero]);
    }

    #[test]
    fn pair_below_threshold_is_xx() {
        let d = design(vec![mux(0, 5, 1, 2), mux(1, 6, 2, 1)]);
        let key = recover_key(&d, &vec![(0.5, 0.5), (0.6, 0.6)], 2, 0.01);
        assert_eq!(key, vec![KeyValue::X, KeyValue::X]);
    }

    #[test]
    fn pair_partner_crosses_even_when_its_own_scores_disagree() {
        // The winner's evidence overrides the partner's weaker scores.
        let d = design(vec![mux(0, 5, 1, 2), mux(1, 6, 2, 1)]);
        // m0 strongly favours link1 (src 2). Partner m1 must take src 1,
        // which is its src1 ⇒ bit1 = 1, even though m1's own scores lean 0.
        let key = recover_key(&d, &vec![(0.1, 0.95), (0.60, 0.55)], 2, 0.01);
        assert_eq!(key, vec![KeyValue::One, KeyValue::One]);
    }

    #[test]
    fn s4_shared_key_bit_set_once() {
        let d = design(vec![mux(0, 5, 1, 2), mux(0, 6, 2, 1)]);
        let key = recover_key(&d, &vec![(0.9, 0.1), (0.8, 0.3)], 1, 0.01);
        assert_eq!(key, vec![KeyValue::Zero]);
    }

    #[test]
    fn classification_distinguishes_kinds() {
        let d = design(vec![
            mux(0, 5, 1, 2),
            mux(1, 6, 2, 1), // pair with different bits → S1/S5 style
            mux(2, 7, 3, 4), // single
        ]);
        let kinds = classify_localities(&d);
        assert!(kinds.contains(&LocalityKind::PairedTwoKeys));
        assert!(kinds.contains(&LocalityKind::Single));
        let d2 = design(vec![mux(0, 5, 1, 2), mux(0, 6, 2, 1)]);
        assert_eq!(
            classify_localities(&d2),
            vec![LocalityKind::PairedSharedKey]
        );
    }

    #[test]
    fn strict_threshold_abstains_everywhere() {
        let d = design(vec![mux(0, 5, 1, 2), mux(1, 6, 2, 1), mux(2, 7, 3, 4)]);
        let key = recover_key(
            &d,
            &vec![(0.9, 0.1), (0.7, 0.2), (0.99, 0.01)],
            3,
            1.1, // above any possible likelihood gap
        );
        assert_eq!(key, vec![KeyValue::X; 3]);
    }
}
