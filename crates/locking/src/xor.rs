//! Classic XOR/XNOR logic locking (the Fig. 1 ② baseline).
//!
//! An XOR key-gate passes its wire unchanged when the key bit is 0; an
//! XNOR when the key bit is 1. Without re-synthesis the gate *type*
//! therefore leaks the key bit directly — the leakage that SAIL-style ML
//! attacks exploit and that motivated learning-resilient MUX locking.

use muxlink_netlist::Netlist;
use rand::Rng;

use crate::site::LockBuilder;
use crate::{Locality, LockError, LockOptions, LockedNetlist, Strategy};

const TRIES: usize = 64;

/// Locks a design by inserting `key_size` XOR/XNOR key-gates on random
/// internal wires.
///
/// # Errors
///
/// [`LockError::EmptyKey`] and [`LockError::InsufficientSites`] as for the
/// MUX schemes.
///
/// # Example
///
/// ```
/// use muxlink_locking::{xor, LockOptions};
/// let design = muxlink_benchgen::c17();
/// let locked = xor::lock(&design, &LockOptions::new(3, 1))?;
/// assert_eq!(locked.key.len(), 3);
/// # Ok::<(), muxlink_locking::LockError>(())
/// ```
pub fn lock(netlist: &Netlist, opts: &LockOptions) -> Result<LockedNetlist, LockError> {
    lock_named(netlist, opts, crate::KEY_INPUT_PREFIX)
}

/// Like [`lock`] but with a custom key-input naming prefix — needed when
/// re-locking an already locked design (e.g. to build OMLA-style training
/// data) without clashing with the existing `keyinput*` nets.
///
/// # Errors
///
/// As for [`lock`].
pub fn lock_named(
    netlist: &Netlist,
    opts: &LockOptions,
    key_prefix: &str,
) -> Result<LockedNetlist, LockError> {
    if opts.key_size == 0 {
        return Err(LockError::EmptyKey);
    }
    let mut b = LockBuilder::new(netlist, opts.seed);
    b.set_key_prefix(key_prefix);
    'outer: while b.keys_placed() < opts.key_size {
        let wires = b.candidates(None);
        for _ in 0..TRIES {
            let w = match b.choose(&wires) {
                Some(w) => w,
                None => break,
            };
            let sink = match b.choose(&b.gate_sinks(w)) {
                Some(g) => g,
                None => continue,
            };
            let k_val = b.rng.gen::<bool>();
            let (k, k_net) = b.add_key_input(k_val);
            if let Some(kg) = b.insert_xor(k, k_net, k_val, w, sink) {
                b.push_locality(Locality {
                    strategy: Strategy::Xor,
                    muxes: Vec::new(),
                    xors: vec![kg],
                    key_bits: vec![k],
                });
                continue 'outer;
            }
            unreachable!("sink chosen from gate_sinks(w) must contain w");
        }
        return Err(LockError::InsufficientSites {
            requested: opts.key_size,
            placed: b.keys_placed(),
        });
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_key;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_netlist::sim::exhaustive_equiv;
    use muxlink_netlist::GateType;

    #[test]
    fn gate_type_leaks_key_bit() {
        // The defining weakness of unsynthesised XOR locking.
        let n = SynthConfig::new("m", 12, 6, 150).generate(4);
        let locked = lock(&n, &LockOptions::new(16, 8)).unwrap();
        for loc in &locked.localities {
            let kg = &loc.xors[0];
            let ty = locked.netlist.gate(kg.gate).ty();
            let bit = locked.key.bit(kg.key_bit);
            match ty {
                GateType::Xor => assert!(!bit),
                GateType::Xnor => assert!(bit),
                other => panic!("unexpected key-gate type {other}"),
            }
        }
    }

    #[test]
    fn correct_key_restores_function() {
        let n = SynthConfig::new("m", 12, 6, 150).generate(4);
        let locked = lock(&n, &LockOptions::new(8, 3)).unwrap();
        let rec = apply_key(&locked, &locked.key).unwrap();
        assert!(exhaustive_equiv(&n, &rec).unwrap());
    }

    #[test]
    fn fully_wrong_key_corrupts_function() {
        // (A single flipped bit can be masked by redundant logic in a
        // random netlist; inverting the whole key cannot.)
        let n = SynthConfig::new("m", 12, 6, 150).generate(4);
        let locked = lock(&n, &LockOptions::new(4, 5)).unwrap();
        let bits: Vec<bool> = locked.key.bits().iter().map(|b| !b).collect();
        let wrong = apply_key(&locked, &crate::Key::from_bits(bits)).unwrap();
        assert!(!exhaustive_equiv(&n, &wrong).unwrap());
    }
}
