//! Naive MUX-based locking (the Fig. 1 ③ baseline).
//!
//! Inserts key MUXes without any fan-out discipline: the true wire may be a
//! single-output node, in which case the wrong key value leaves its entire
//! logic cone dangling ("open net"). This is exactly the structural
//! vulnerability the SAAM attack exploits and that D-MUX/S5 were designed
//! to eliminate.

use muxlink_netlist::Netlist;
use rand::Rng;

use crate::site::{single_mux_locality, LockBuilder};
use crate::{LockError, LockOptions, LockedNetlist, Strategy};

const TRIES: usize = 128;

/// Locks a design with one undisciplined key MUX per key bit.
///
/// # Errors
///
/// [`LockError::EmptyKey`] and [`LockError::InsufficientSites`] as for the
/// other schemes.
pub fn lock(netlist: &Netlist, opts: &LockOptions) -> Result<LockedNetlist, LockError> {
    if opts.key_size == 0 {
        return Err(LockError::EmptyKey);
    }
    let mut b = LockBuilder::new(netlist, opts.seed);
    'outer: while b.keys_placed() < opts.key_size {
        let any = b.candidates(None);
        for _ in 0..TRIES {
            let f_true = match b.choose(&any) {
                Some(f) => f,
                None => break,
            };
            let f_false = match b.choose(&any) {
                Some(f) => f,
                None => break,
            };
            if f_true == f_false {
                continue;
            }
            let sink = match b.choose(&b.gate_sinks(f_true)) {
                Some(g) => g,
                None => continue,
            };
            if !b.can_insert(f_true, f_false, sink) {
                continue;
            }
            let k_val = b.rng.gen::<bool>();
            let (k, k_net) = b.add_key_input(k_val);
            let m = b.insert_mux(k, k_net, k_val, f_true, f_false, sink);
            b.push_locality(single_mux_locality(Strategy::NaiveMux, m));
            continue 'outer;
        }
        return Err(LockError::InsufficientSites {
            requested: opts.key_size,
            placed: b.keys_placed(),
        });
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_key;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_netlist::sim::exhaustive_equiv;

    #[test]
    fn correct_key_restores_function() {
        let n = SynthConfig::new("m", 12, 6, 200).generate(8);
        let locked = lock(&n, &LockOptions::new(8, 1)).unwrap();
        let rec = apply_key(&locked, &locked.key).unwrap();
        assert!(exhaustive_equiv(&n, &rec).unwrap());
    }

    #[test]
    fn some_true_wires_become_saam_vulnerable() {
        // With no fan-out discipline, some locked localities leave the true
        // wire readable only through the MUX — the SAAM giveaway.
        let n = SynthConfig::new("m", 16, 8, 300).generate(2);
        let locked = lock(&n, &LockOptions::new(32, 4)).unwrap();
        let vulnerable = locked
            .localities
            .iter()
            .filter(|loc| {
                let m = &loc.muxes[0];
                // True wire's only reader is the MUX itself.
                locked.netlist.fanout_count(m.true_input) == 1
            })
            .count();
        assert!(
            vulnerable > 0,
            "expected at least one dangling-true-wire site"
        );
    }

    #[test]
    fn key_size_respected() {
        let n = SynthConfig::new("m", 12, 6, 200).generate(8);
        let locked = lock(&n, &LockOptions::new(13, 9)).unwrap();
        assert_eq!(locked.key.len(), 13);
        assert_eq!(locked.localities.len(), 13);
    }
}
