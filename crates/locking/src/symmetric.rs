//! Symmetric MUX-based locking (Alaql et al., TVLSI 2021) — strategy S5.
//!
//! S5 is structurally the S4 pairing (two MUXes sharing the data inputs
//! `{fi, fj}`) but with **two individual key inputs** `{ki, kj}` and both
//! `fi`, `fj` being **single-output** nodes. Because the true wires cross
//! (`ki` passes `fi` to `gi`, `kj` passes `fj` to `gj`) exactly two of the
//! four key combinations are plausible — `{0,1}` and `{1,0}` — and the
//! correct pair is chosen uniformly. Each data wire always feeds both
//! MUXes, so no selection strands logic (SAAM-resilient), and the
//! interconnected true cones defeat constant-propagation feature deltas
//! (SWEEP/SCOPE-resilient).

use muxlink_netlist::Netlist;
use rand::Rng;

use crate::site::LockBuilder;
use crate::{Locality, LockError, LockOptions, LockedNetlist, Strategy};

const TRIES: usize = 256;

/// Locks a design with symmetric MUX-based locking (S5).
///
/// Each locality consumes two key bits, so `opts.key_size` should be even;
/// an odd size leaves the final bit unplaced and fails with
/// [`LockError::InsufficientSites`].
///
/// # Errors
///
/// [`LockError::EmptyKey`] for zero key size,
/// [`LockError::InsufficientSites`] when the design lacks enough viable
/// single-output pairs.
///
/// # Example
///
/// ```
/// use muxlink_locking::{symmetric, LockOptions};
/// let design = muxlink_benchgen::synth::SynthConfig::new("d", 16, 8, 200).generate(1);
/// let locked = symmetric::lock(&design, &LockOptions::new(8, 3))?;
/// assert_eq!(locked.localities.len(), 4); // two bits per locality
/// # Ok::<(), muxlink_locking::LockError>(())
/// ```
pub fn lock(netlist: &Netlist, opts: &LockOptions) -> Result<LockedNetlist, LockError> {
    if opts.key_size == 0 {
        return Err(LockError::EmptyKey);
    }
    let mut b = LockBuilder::new(netlist, opts.seed);
    while b.keys_placed() + 1 < opts.key_size {
        match try_s5(&mut b) {
            Some(loc) => b.push_locality(loc),
            None => {
                return Err(LockError::InsufficientSites {
                    requested: opts.key_size,
                    placed: b.keys_placed(),
                })
            }
        }
    }
    if b.keys_placed() < opts.key_size {
        // Odd key size: S5 cannot place a lone bit.
        return Err(LockError::InsufficientSites {
            requested: opts.key_size,
            placed: b.keys_placed(),
        });
    }
    b.finish()
}

fn try_s5(b: &mut LockBuilder) -> Option<Locality> {
    let single = b.candidates(Some(false));
    if single.len() < 2 {
        return None;
    }
    for _ in 0..TRIES {
        let fi = b.choose(&single)?;
        let fj = b.choose(&single)?;
        if fi == fj {
            continue;
        }
        let gi = match b.choose(&b.gate_sinks(fi)) {
            Some(g) => g,
            None => continue,
        };
        let gj = match b.choose(&b.gate_sinks(fj)) {
            Some(g) => g,
            None => continue,
        };
        if gi == gj || !b.can_insert(fi, fj, gi) || !b.can_insert(fj, fi, gj) {
            continue;
        }
        // The two plausible key pairs are {0,1} and {1,0}; pick one.
        let ki_val = b.rng.gen::<bool>();
        let kj_val = !ki_val;
        let (ki, ki_net) = b.add_key_input(ki_val);
        let (kj, kj_net) = b.add_key_input(kj_val);
        let m1 = b.insert_mux(ki, ki_net, ki_val, fi, fj, gi);
        let m2 = b.insert_mux(kj, kj_net, kj_val, fj, fi, gj);
        return Some(Locality {
            strategy: Strategy::S5,
            muxes: vec![m1, m2],
            xors: Vec::new(),
            key_bits: vec![ki, kj],
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_key;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_netlist::sim::exhaustive_equiv;

    fn medium() -> Netlist {
        SynthConfig::new("m", 16, 8, 300).generate(42)
    }

    #[test]
    fn key_pairs_are_complementary() {
        let n = medium();
        let locked = lock(&n, &LockOptions::new(16, 7)).unwrap();
        for loc in &locked.localities {
            assert_eq!(loc.strategy, Strategy::S5);
            let [ki, kj] = [loc.key_bits[0], loc.key_bits[1]];
            assert_ne!(
                locked.key.bit(ki),
                locked.key.bit(kj),
                "S5 key pairs must be {{0,1}} or {{1,0}}"
            );
        }
    }

    #[test]
    fn correct_key_restores_function() {
        let n = medium();
        let locked = lock(&n, &LockOptions::new(12, 2)).unwrap();
        let recovered = apply_key(&locked, &locked.key).unwrap();
        assert!(exhaustive_equiv(&n, &recovered).unwrap());
    }

    #[test]
    fn both_data_wires_feed_both_muxes() {
        // The SAAM-resilience property: within a locality, fi and fj are
        // data inputs of both MUXes.
        let n = medium();
        let locked = lock(&n, &LockOptions::new(8, 5)).unwrap();
        for loc in &locked.localities {
            let [m1, m2] = [&loc.muxes[0], &loc.muxes[1]];
            assert_eq!(
                {
                    let mut a = [m1.in0, m1.in1];
                    a.sort_unstable();
                    a
                },
                {
                    let mut b = [m2.in0, m2.in1];
                    b.sort_unstable();
                    b
                },
                "the two MUXes of an S5 locality share their data inputs"
            );
        }
    }

    #[test]
    fn odd_key_size_fails() {
        let n = medium();
        assert!(matches!(
            lock(&n, &LockOptions::new(7, 0)),
            Err(LockError::InsufficientSites { placed: 6, .. })
        ));
    }

    #[test]
    fn fewer_localities_than_dmux_for_same_key_size() {
        // The paper's "Effect of the LL Scheme" observation: S5 spends two
        // bits per locality, D-MUX often one.
        let n = medium();
        let k = 16;
        let s5 = lock(&n, &LockOptions::new(k, 3)).unwrap();
        let dm = crate::dmux::lock(&n, &LockOptions::new(k, 3)).unwrap();
        assert_eq!(s5.localities.len(), k / 2);
        assert!(dm.localities.len() >= s5.localities.len());
    }
}
