//! Shared site-selection and MUX-insertion machinery for all MUX-based
//! locking schemes.

use std::collections::HashSet;

use muxlink_netlist::{traversal, GateId, GateType, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Key, KeyGate, Locality, LockError, LockedNetlist, MuxInstance, Strategy};

/// Prefix of key-input net names (`keyinput0`, `keyinput1`, …) — the
/// convention used by the logic-locking community's BENCH exchanges, and
/// what attacks look for when tracing key gates.
pub const KEY_INPUT_PREFIX: &str = "keyinput";

/// Mutable state threaded through a locking run.
pub(crate) struct LockBuilder {
    pub netlist: Netlist,
    pub rng: StdRng,
    key_prefix: String,
    key_bits: Vec<bool>,
    key_inputs: Vec<NetId>,
    localities: Vec<Locality>,
    /// Output nets of inserted key MUXes (excluded from future f/g pools).
    mux_outputs: HashSet<NetId>,
    /// Inserted key-gate ids (excluded as sinks).
    key_gates: HashSet<GateId>,
}

impl LockBuilder {
    pub fn new(netlist: &Netlist, seed: u64) -> Self {
        Self {
            netlist: netlist.clone(),
            rng: StdRng::seed_from_u64(seed),
            key_prefix: KEY_INPUT_PREFIX.to_owned(),
            key_bits: Vec::new(),
            key_inputs: Vec::new(),
            localities: Vec::new(),
            mux_outputs: HashSet::new(),
            key_gates: HashSet::new(),
        }
    }

    /// Overrides the key-input naming prefix (default `keyinput`); used
    /// by attacks that re-lock an already locked design for training and
    /// must avoid name collisions.
    pub fn set_key_prefix(&mut self, prefix: impl Into<String>) {
        self.key_prefix = prefix.into();
    }

    /// Registers a new key bit with the given correct value; returns
    /// `(bit index, key-input net)`.
    pub fn add_key_input(&mut self, value: bool) -> (usize, NetId) {
        let idx = self.key_bits.len();
        let net = self
            .netlist
            .add_input(format!("{}{idx}", self.key_prefix))
            .expect("key input names are unique by construction");
        self.key_bits.push(value);
        self.key_inputs.push(net);
        (idx, net)
    }

    pub fn keys_placed(&self) -> usize {
        self.key_bits.len()
    }

    /// Candidate f-nodes: nets driven by ordinary gates (not key MUXes).
    /// `multi_output` filters on fan-out: `Some(true)` ⇒ ≥ 2 readers,
    /// `Some(false)` ⇒ exactly 1, `None` ⇒ any.
    pub fn candidates(&self, multi_output: Option<bool>) -> Vec<NetId> {
        self.netlist
            .net_ids()
            .filter(|&n| {
                let net = self.netlist.net(n);
                match net.driver() {
                    Some(_) if !self.mux_outputs.contains(&n) => {}
                    _ => return false,
                }
                match multi_output {
                    None => true,
                    Some(want_multi) => {
                        let fo = self.netlist.fanout_count(n);
                        if want_multi {
                            fo >= 2
                        } else {
                            fo == 1
                        }
                    }
                }
            })
            .collect()
    }

    /// Ordinary-gate sinks of `f` (the "output nodes" D-MUX selects from).
    pub fn gate_sinks(&self, f: NetId) -> Vec<GateId> {
        muxlink_netlist::cones::output_nodes(&self.netlist, f)
            .into_iter()
            .filter(|g| !self.key_gates.contains(g))
            .collect()
    }

    /// Checks whether routing `sink`'s `f_true` input through a MUX with
    /// decoy `f_false` is structurally sound: distinct wires, the decoy is
    /// not already feeding the sink, and no combinational loop arises.
    pub fn can_insert(&self, f_true: NetId, f_false: NetId, sink: GateId) -> bool {
        if f_true == f_false {
            return false;
        }
        let gate = self.netlist.gate(sink);
        if !gate.inputs().contains(&f_true) || gate.inputs().contains(&f_false) {
            return false;
        }
        // New edge f_false → sink: a loop appears iff sink's output
        // already reaches f_false.
        !traversal::reaches(&self.netlist, gate.output(), f_false)
    }

    /// Inserts one key MUX: `sink`'s `f_true` input is replaced by
    /// `MUX(key_net, in0, in1)` where the correct `key_value` selects
    /// `f_true`.
    ///
    /// # Panics
    ///
    /// Panics when [`LockBuilder::can_insert`] would return false (callers
    /// must check first).
    pub fn insert_mux(
        &mut self,
        key_bit: usize,
        key_net: NetId,
        key_value: bool,
        f_true: NetId,
        f_false: NetId,
        sink: GateId,
    ) -> MuxInstance {
        assert!(
            self.can_insert(f_true, f_false, sink),
            "insert_mux preconditions violated"
        );
        let (in0, in1) = if key_value {
            (f_false, f_true)
        } else {
            (f_true, f_false)
        };
        let name = self.netlist.fresh_net_name("keymux");
        let out = self
            .netlist
            .add_gate(name, GateType::Mux, &[key_net, in0, in1])
            .expect("fresh name, known nets");
        let mux_gate = self.netlist.net(out).driver().expect("just added");
        let rewired = self
            .netlist
            .rewire_input(sink, f_true, out)
            .expect("ids valid");
        debug_assert!(rewired, "f_true checked as an input of sink");
        self.mux_outputs.insert(out);
        self.key_gates.insert(mux_gate);
        MuxInstance {
            gate: mux_gate,
            key_bit,
            in0,
            in1,
            sink,
            true_input: f_true,
        }
    }

    /// Inserts a key gate of explicit type `ty` (XOR/XNOR) on `wire`
    /// before `sink`, optionally followed by a fresh inverter (TRLL's
    /// mode C). The caller is responsible for choosing the key value that
    /// preserves functionality. Returns `None` when `wire` does not feed
    /// `sink`.
    pub fn insert_keyed_gate(
        &mut self,
        key_bit: usize,
        key_net: NetId,
        ty: GateType,
        wire: NetId,
        sink: GateId,
        with_inverter: bool,
    ) -> Option<KeyGate> {
        if !self.netlist.gate(sink).inputs().contains(&wire) {
            return None;
        }
        let name = self.netlist.fresh_net_name("keyxor");
        let key_out = self
            .netlist
            .add_gate(name, ty, &[wire, key_net])
            .expect("fresh name, known nets");
        let gate = self.netlist.net(key_out).driver().expect("just added");
        let routed = if with_inverter {
            let inv_name = self.netlist.fresh_net_name("keyinv");
            let inv_out = self
                .netlist
                .add_gate(inv_name, GateType::Not, &[key_out])
                .expect("fresh name, known nets");
            self.mux_outputs.insert(inv_out);
            inv_out
        } else {
            key_out
        };
        self.netlist
            .rewire_input(sink, wire, routed)
            .expect("ids valid");
        self.mux_outputs.insert(key_out);
        self.key_gates.insert(gate);
        Some(KeyGate { gate, key_bit })
    }

    /// Registers a gate mutated in place (e.g. an inverter replaced by a
    /// TRLL key gate) so later site selection skips it.
    pub fn mark_key_gate(&mut self, gate: GateId, output: NetId) {
        self.key_gates.insert(gate);
        self.mux_outputs.insert(output);
    }

    /// Inserts one XOR/XNOR key-gate on `wire` before `sink` (baseline
    /// schemes). With correct key value 0 an XOR is inserted (identity when
    /// the key input is 0); with value 1 an XNOR.
    pub fn insert_xor(
        &mut self,
        key_bit: usize,
        key_net: NetId,
        key_value: bool,
        wire: NetId,
        sink: GateId,
    ) -> Option<KeyGate> {
        if !self.netlist.gate(sink).inputs().contains(&wire) {
            return None;
        }
        let ty = if key_value {
            GateType::Xnor
        } else {
            GateType::Xor
        };
        let name = self.netlist.fresh_net_name("keyxor");
        let out = self
            .netlist
            .add_gate(name, ty, &[wire, key_net])
            .expect("fresh name, known nets");
        let gate = self.netlist.net(out).driver().expect("just added");
        self.netlist
            .rewire_input(sink, wire, out)
            .expect("ids valid");
        self.mux_outputs.insert(out);
        self.key_gates.insert(gate);
        Some(KeyGate { gate, key_bit })
    }

    pub fn push_locality(&mut self, locality: Locality) {
        self.localities.push(locality);
    }

    /// Picks a random element of a slice.
    pub fn choose<T: Copy>(&mut self, pool: &[T]) -> Option<T> {
        if pool.is_empty() {
            None
        } else {
            Some(pool[self.rng.gen_range(0..pool.len())])
        }
    }

    pub fn finish(self) -> Result<LockedNetlist, LockError> {
        debug_assert!(self.netlist.validate().is_ok());
        Ok(LockedNetlist {
            netlist: self.netlist,
            key: Key::from_bits(self.key_bits),
            key_inputs: self.key_inputs,
            localities: self.localities,
        })
    }
}

/// Convenience used by the scheme modules to build a one-MUX locality.
pub(crate) fn single_mux_locality(strategy: Strategy, m: MuxInstance) -> Locality {
    Locality {
        strategy,
        key_bits: vec![m.key_bit],
        muxes: vec![m],
        xors: Vec::new(),
    }
}
