use std::fmt;

use muxlink_netlist::NetlistError;

/// Errors produced while locking a design or applying a key.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockError {
    /// The design has too few viable locking sites for the requested key
    /// size (reports how many bits were actually placed).
    InsufficientSites {
        /// Key bits requested.
        requested: usize,
        /// Key bits successfully placed before running out of sites.
        placed: usize,
    },
    /// The requested key size was zero.
    EmptyKey,
    /// A key vector of the wrong length was supplied.
    KeyLengthMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
    /// A key with undecided (X) bits was used where a fully specified key
    /// is required.
    UndecidedKeyBit(usize),
    /// Underlying netlist manipulation failed.
    Netlist(NetlistError),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientSites { requested, placed } => write!(
                f,
                "design exhausted viable locking sites: placed {placed} of {requested} key bits"
            ),
            Self::EmptyKey => write!(f, "key size must be at least 1"),
            Self::KeyLengthMismatch { expected, got } => {
                write!(f, "key length mismatch: expected {expected}, got {got}")
            }
            Self::UndecidedKeyBit(i) => {
                write!(
                    f,
                    "key bit {i} is undecided (X); a concrete value is required"
                )
            }
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for LockError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}
