//! Applying a key to a locked design: collapse every key-gate according to
//! the key bits and strip the key interface, producing a plain netlist
//! comparable to the original.

use std::collections::HashSet;

use muxlink_netlist::{GateType, Netlist, NetlistError};

use crate::{Key, KeyValue, LockError, LockedNetlist};

/// Collapses all key-gates of `locked` under the fully specified `key` and
/// returns the recovered plain netlist (key inputs removed).
///
/// # Errors
///
/// [`LockError::KeyLengthMismatch`] when `key` has the wrong width, plus
/// netlist errors from reconstruction.
pub fn apply_key(locked: &LockedNetlist, key: &Key) -> Result<Netlist, LockError> {
    if key.len() != locked.key.len() {
        return Err(LockError::KeyLengthMismatch {
            expected: locked.key.len(),
            got: key.len(),
        });
    }
    let mut n = locked.netlist.clone();
    for loc in &locked.localities {
        for m in &loc.muxes {
            let selected = if key.bit(m.key_bit) { m.in1 } else { m.in0 };
            n.replace_gate(m.gate, GateType::Buf, &[selected])?;
        }
        for kg in &loc.xors {
            let gate = n.gate(kg.gate);
            let wire = gate.inputs()[0];
            let is_xnor = gate.ty() == GateType::Xnor;
            let key_bit = key.bit(kg.key_bit);
            // XOR(w,k) = w ⊕ k ; XNOR(w,k) = ¬(w ⊕ k).
            let inverts = key_bit != is_xnor;
            let ty = if inverts {
                GateType::Not
            } else {
                GateType::Buf
            };
            n.replace_gate(kg.gate, ty, &[wire])?;
        }
    }
    let key_names: HashSet<String> = locked.key_input_names().into_iter().collect();
    remove_inputs(&n, &key_names).map_err(LockError::from)
}

/// Like [`apply_key`] but takes attack-style [`KeyValue`]s; any `X` entry
/// is an error (enumerate the assignments at the call site — see the
/// metrics module of `muxlink-core` for the Fig. 8 averaging).
///
/// # Errors
///
/// [`LockError::UndecidedKeyBit`] on the first `X`, plus the
/// [`apply_key`] errors.
pub fn apply_key_values(locked: &LockedNetlist, values: &[KeyValue]) -> Result<Netlist, LockError> {
    if values.len() != locked.key.len() {
        return Err(LockError::KeyLengthMismatch {
            expected: locked.key.len(),
            got: values.len(),
        });
    }
    let bits: Vec<bool> = values
        .iter()
        .enumerate()
        .map(|(i, v)| v.as_bool().ok_or(LockError::UndecidedKeyBit(i)))
        .collect::<Result<_, _>>()?;
    apply_key(locked, &Key::from_bits(bits))
}

/// Rebuilds a netlist without the named primary inputs; they must be
/// unread (which holds after every key-gate has been collapsed).
fn remove_inputs(netlist: &Netlist, names: &HashSet<String>) -> Result<Netlist, NetlistError> {
    let mut out = Netlist::new(netlist.name().to_owned());
    let mut map: Vec<Option<muxlink_netlist::NetId>> = vec![None; netlist.net_count()];
    for &pi in netlist.inputs() {
        let name = netlist.net(pi).name();
        if names.contains(name) {
            continue;
        }
        map[pi.index()] = Some(out.add_input(name.to_owned())?);
    }
    let order = muxlink_netlist::traversal::topological_order(netlist)?;
    for gid in order {
        let gate = netlist.gate(gid);
        // Gates reading a removed key input would be an internal bug: every
        // key-gate was collapsed to BUF/NOT of a data wire first.
        let ins: Vec<muxlink_netlist::NetId> = gate
            .inputs()
            .iter()
            .map(|&n| {
                map[n.index()]
                    .ok_or_else(|| NetlistError::Undriven(netlist.net(n).name().to_owned()))
            })
            .collect::<Result<_, _>>()?;
        let id = out.add_gate(
            netlist.net(gate.output()).name().to_owned(),
            gate.ty(),
            &ins,
        )?;
        map[gate.output().index()] = Some(id);
    }
    for &po in netlist.outputs() {
        let id = map[po.index()]
            .ok_or_else(|| NetlistError::Undriven(netlist.net(po).name().to_owned()))?;
        out.mark_output(id)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dmux, LockOptions};
    use muxlink_benchgen::synth::SynthConfig;

    #[test]
    fn apply_removes_key_interface() {
        let n = SynthConfig::new("m", 10, 5, 120).generate(6);
        let locked = dmux::lock(&n, &LockOptions::new(6, 2)).unwrap();
        let rec = apply_key(&locked, &locked.key).unwrap();
        assert_eq!(rec.inputs().len(), n.inputs().len());
        assert!(rec.find_net("keyinput0").is_none());
        assert!(rec.validate().is_ok());
    }

    #[test]
    fn wrong_length_key_rejected() {
        let n = SynthConfig::new("m", 10, 5, 120).generate(6);
        let locked = dmux::lock(&n, &LockOptions::new(6, 2)).unwrap();
        assert!(matches!(
            apply_key(&locked, &Key::from_bits(vec![true; 5])),
            Err(LockError::KeyLengthMismatch {
                expected: 6,
                got: 5
            })
        ));
    }

    #[test]
    fn x_values_rejected() {
        let n = SynthConfig::new("m", 10, 5, 120).generate(6);
        let locked = dmux::lock(&n, &LockOptions::new(4, 2)).unwrap();
        let mut vals = locked.key.to_values();
        vals[2] = KeyValue::X;
        assert!(matches!(
            apply_key_values(&locked, &vals),
            Err(LockError::UndecidedKeyBit(2))
        ));
    }

    #[test]
    fn values_path_matches_key_path() {
        let n = SynthConfig::new("m", 10, 5, 120).generate(6);
        let locked = dmux::lock(&n, &LockOptions::new(4, 9)).unwrap();
        let a = apply_key(&locked, &locked.key).unwrap();
        let b = apply_key_values(&locked, &locked.key.to_values()).unwrap();
        assert_eq!(
            muxlink_netlist::bench_format::write(&a).unwrap(),
            muxlink_netlist::bench_format::write(&b).unwrap()
        );
    }
}
