use muxlink_netlist::{GateId, NetId, Netlist};
use serde::{Deserialize, Serialize};

use crate::Key;

/// The locking strategy that produced a [`Locality`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// D-MUX: two multi-output nodes, two MUXes, two key bits.
    S1,
    /// D-MUX: two multi-output nodes, one MUX, one key bit.
    S2,
    /// D-MUX: multi-output `fi` + single-output `fj`, one MUX, one key bit.
    S3,
    /// D-MUX: unrestricted nodes, two MUXes, **one shared** key bit.
    S4,
    /// Symmetric MUX locking: like S4 but two individual key bits.
    S5,
    /// Classic XOR/XNOR key-gate (baseline).
    Xor,
    /// Naive MUX insertion without fan-out discipline (baseline).
    NaiveMux,
}

impl Strategy {
    /// Number of key bits one locality of this strategy consumes.
    #[must_use]
    pub fn key_bits(self) -> usize {
        match self {
            Strategy::S1 | Strategy::S5 => 2,
            _ => 1,
        }
    }

    /// Number of MUX key-gates one locality inserts (0 for XOR locking).
    #[must_use]
    pub fn mux_count(self) -> usize {
        match self {
            Strategy::S1 | Strategy::S4 | Strategy::S5 => 2,
            Strategy::S2 | Strategy::S3 | Strategy::NaiveMux => 1,
            Strategy::Xor => 0,
        }
    }
}

/// One inserted MUX key-gate and its ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxInstance {
    /// The MUX gate in the locked netlist.
    pub gate: GateId,
    /// Index of the key bit wired to the select input.
    pub key_bit: usize,
    /// Data input selected when the key bit is 0.
    pub in0: NetId,
    /// Data input selected when the key bit is 1.
    pub in1: NetId,
    /// The sink gate whose input was routed through the MUX.
    pub sink: GateId,
    /// Ground truth: the data input that restores the original function
    /// (equals `in0` when the correct key bit is 0).
    pub true_input: NetId,
}

/// One inserted XOR/XNOR key-gate (baseline schemes only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyGate {
    /// The XOR/XNOR gate in the locked netlist.
    pub gate: GateId,
    /// Index of the controlling key bit.
    pub key_bit: usize,
}

/// One locked locality: the unit the paper's post-processing reasons about
/// (S1/S4/S5 localities pair two MUXes; S2/S3 have one).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Locality {
    /// Which strategy built this locality.
    pub strategy: Strategy,
    /// The MUX key-gates of the locality (empty for XOR locking).
    pub muxes: Vec<MuxInstance>,
    /// The XOR key-gates of the locality (empty for MUX schemes).
    pub xors: Vec<KeyGate>,
    /// The key-bit indices this locality consumes, in order.
    pub key_bits: Vec<usize>,
}

/// A locked design: the circuit handed to the attacker plus the defender's
/// ground truth used only for scoring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LockedNetlist {
    /// The locked circuit (what the attacker reverse-engineers from GDSII).
    pub netlist: Netlist,
    /// The correct key (ground truth; scoring only).
    pub key: Key,
    /// Key-input nets, indexed by key bit.
    pub key_inputs: Vec<NetId>,
    /// Per-locality metadata (ground truth; scoring only).
    pub localities: Vec<Locality>,
}

impl LockedNetlist {
    /// Names of the key-input nets in key-bit order (`keyinput0`, …) —
    /// this *is* attacker-visible: key inputs are traced from the
    /// tamper-proof memory.
    #[must_use]
    pub fn key_input_names(&self) -> Vec<String> {
        self.key_inputs
            .iter()
            .map(|&n| self.netlist.net(n).name().to_owned())
            .collect()
    }

    /// All MUX instances across localities, ordered by key bit then
    /// insertion.
    #[must_use]
    pub fn mux_instances(&self) -> Vec<&MuxInstance> {
        let mut v: Vec<&MuxInstance> = self
            .localities
            .iter()
            .flat_map(|l| l.muxes.iter())
            .collect();
        v.sort_by_key(|m| (m.key_bit, m.gate));
        v
    }

    /// Overhead in gates relative to an original gate count.
    #[must_use]
    pub fn gate_overhead(&self, original_gates: usize) -> usize {
        self.netlist.gate_count().saturating_sub(original_gates)
    }
}
