//! Truly Random Logic Locking (TRLL, Limaye et al., IEEE TCAD 2020) —
//! the XOR-based learning-resilient scheme discussed in the paper's §II-B.
//!
//! TRLL randomises the relationship between key-gate *type* and key
//! *value* by mixing three insertion modes:
//!
//! * **A — inverter replacement**: an existing `NOT(x)` becomes
//!   `XOR(x, k)` with k = 1 or `XNOR(x, k)` with k = 0;
//! * **B — buffer insertion**: a wire is routed through `XOR(x, k)` with
//!   k = 0 or `XNOR(x, k)` with k = 1;
//! * **C — key-gate + inverter**: a wire is routed through
//!   `NOT(XOR(x, k))` with k = 1 or `NOT(XNOR(x, k))` with k = 0.
//!
//! Across the modes both gate types appear with both key values, so the
//! naive SAIL-style mapping (XOR ⇒ 0, XNOR ⇒ 1) degrades to a coin flip —
//! TRLL passes the **random netlist test (RNT)**. It famously **fails the
//! AND netlist test (ANT)**: an AND-only design has no inverters to
//! replace, and every inverter mode C introduces is conspicuously new, so
//! the mode of each key gate (and with it the key) becomes decodable —
//! see `muxlink_attack_baselines::sail`.

use muxlink_netlist::{GateType, Netlist};
use rand::Rng;

use crate::site::LockBuilder;
use crate::{KeyGate, Locality, LockError, LockOptions, LockedNetlist, Strategy};

const TRIES: usize = 64;

/// Which TRLL insertion produced a key gate (ground truth for analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrllMode {
    /// Replaced an existing inverter.
    ReplaceInverter,
    /// Inserted as a buffer-acting key gate.
    InsertBuffer,
    /// Inserted as key gate followed by a fresh inverter.
    InsertWithInverter,
}

/// Locks a design with TRLL.
///
/// # Errors
///
/// [`LockError::EmptyKey`] / [`LockError::InsufficientSites`] as for the
/// other schemes.
///
/// # Example
///
/// ```
/// use muxlink_locking::{trll, LockOptions};
/// let design = muxlink_benchgen::synth::SynthConfig::new("d", 12, 6, 150).generate(1);
/// let locked = trll::lock(&design, &LockOptions::new(8, 3))?;
/// assert_eq!(locked.key.len(), 8);
/// # Ok::<(), muxlink_locking::LockError>(())
/// ```
pub fn lock(netlist: &Netlist, opts: &LockOptions) -> Result<LockedNetlist, LockError> {
    if opts.key_size == 0 {
        return Err(LockError::EmptyKey);
    }
    let mut b = LockBuilder::new(netlist, opts.seed);
    'outer: while b.keys_placed() < opts.key_size {
        // Candidate inverters for mode A: original NOT gates only —
        // never the inverters (or key gates) locking itself introduced,
        // which `candidates` already excludes via their output nets.
        let inverters: Vec<_> = b
            .candidates(None)
            .into_iter()
            .filter_map(|net| b.netlist.net(net).driver())
            .filter(|&gid| b.netlist.gate(gid).ty() == GateType::Not)
            .collect();
        let mode = pick_mode(&mut b, !inverters.is_empty());
        for _ in 0..TRIES {
            match mode {
                TrllMode::ReplaceInverter => {
                    let Some(inv) = b.choose(&inverters) else {
                        break;
                    };
                    let wire = b.netlist.gate(inv).inputs()[0];
                    // Key value 1 with XOR, 0 with XNOR: either way the
                    // collapsed gate inverts, like the NOT it replaces.
                    let use_xor = b.rng.gen::<bool>();
                    let k_val = use_xor;
                    let (k, k_net) = b.add_key_input(k_val);
                    let ty = if use_xor {
                        GateType::Xor
                    } else {
                        GateType::Xnor
                    };
                    let out = b.netlist.gate(inv).output();
                    b.netlist
                        .replace_gate(inv, ty, &[wire, k_net])
                        .expect("ids valid");
                    b.mark_key_gate(inv, out);
                    b.push_locality(xor_locality(KeyGate {
                        gate: inv,
                        key_bit: k,
                    }));
                    continue 'outer;
                }
                TrllMode::InsertBuffer => {
                    let wires = b.candidates(None);
                    let Some(w) = b.choose(&wires) else { break };
                    let Some(sink) = b.choose(&b.gate_sinks(w)) else {
                        continue;
                    };
                    let use_xor = b.rng.gen::<bool>();
                    // Buffer semantics: XOR needs k = 0, XNOR needs k = 1.
                    let k_val = !use_xor;
                    let (k, k_net) = b.add_key_input(k_val);
                    let kg = b
                        .insert_keyed_gate(
                            k,
                            k_net,
                            if use_xor {
                                GateType::Xor
                            } else {
                                GateType::Xnor
                            },
                            w,
                            sink,
                            false,
                        )
                        .expect("sink reads w by construction");
                    b.push_locality(xor_locality(kg));
                    continue 'outer;
                }
                TrllMode::InsertWithInverter => {
                    let wires = b.candidates(None);
                    let Some(w) = b.choose(&wires) else { break };
                    let Some(sink) = b.choose(&b.gate_sinks(w)) else {
                        continue;
                    };
                    let use_xor = b.rng.gen::<bool>();
                    // NOT(XOR(x,1)) = x ; NOT(XNOR(x,0)) = x.
                    let k_val = use_xor;
                    let (k, k_net) = b.add_key_input(k_val);
                    let kg = b
                        .insert_keyed_gate(
                            k,
                            k_net,
                            if use_xor {
                                GateType::Xor
                            } else {
                                GateType::Xnor
                            },
                            w,
                            sink,
                            true,
                        )
                        .expect("sink reads w by construction");
                    b.push_locality(xor_locality(kg));
                    continue 'outer;
                }
            }
        }
        return Err(LockError::InsufficientSites {
            requested: opts.key_size,
            placed: b.keys_placed(),
        });
    }
    b.finish()
}

fn pick_mode(b: &mut LockBuilder, inverters_available: bool) -> TrllMode {
    let modes: &[TrllMode] = if inverters_available {
        &[
            TrllMode::ReplaceInverter,
            TrllMode::InsertBuffer,
            TrllMode::InsertWithInverter,
        ]
    } else {
        &[TrllMode::InsertBuffer, TrllMode::InsertWithInverter]
    };
    modes[b.rng.gen_range(0..modes.len())]
}

fn xor_locality(kg: KeyGate) -> Locality {
    Locality {
        strategy: Strategy::Xor,
        muxes: Vec::new(),
        key_bits: vec![kg.key_bit],
        xors: vec![kg],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_key;
    use muxlink_benchgen::ant_rnt::ant_netlist;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_netlist::sim::exhaustive_equiv;

    #[test]
    fn correct_key_restores_function() {
        let n = SynthConfig::new("m", 12, 6, 200).generate(5);
        let locked = lock(&n, &LockOptions::new(12, 3)).unwrap();
        let rec = apply_key(&locked, &locked.key).unwrap();
        assert!(exhaustive_equiv(&n, &rec).unwrap());
    }

    #[test]
    fn gate_type_does_not_leak_key() {
        // The property that defeats SAIL: over many key gates, XOR/XNOR
        // appears with both key values.
        let n = SynthConfig::new("m", 16, 8, 400).generate(6);
        let locked = lock(&n, &LockOptions::new(48, 9)).unwrap();
        let naive_correct = locked
            .localities
            .iter()
            .flat_map(|l| &l.xors)
            .filter(|kg| {
                let ty = locked.netlist.gate(kg.gate).ty();
                let naive = ty == muxlink_netlist::GateType::Xnor; // XOR→0, XNOR→1
                naive == locked.key.bit(kg.key_bit)
            })
            .count();
        let total = locked.key.len();
        assert!(
            naive_correct * 10 >= total * 2 && naive_correct * 10 <= total * 8,
            "naive SAIL mapping should be ~coin flip: {naive_correct}/{total}"
        );
    }

    #[test]
    fn works_on_ant_but_with_conspicuous_inverters() {
        // TRLL *runs* on an AND-only netlist — but every inverter in the
        // result is locking-introduced (the ANT failure).
        let ant = ant_netlist(12, 6, 128, 2);
        let inverters_before = ant
            .gates()
            .filter(|(_, g)| g.ty() == muxlink_netlist::GateType::Not)
            .count();
        assert_eq!(inverters_before, 0);
        let locked = lock(&ant, &LockOptions::new(16, 4)).unwrap();
        let rec = apply_key(&locked, &locked.key).unwrap();
        let hd = muxlink_netlist::sim::hamming_distance(&ant, &rec, 4096, 0).unwrap();
        assert_eq!(hd.bits_differing, 0);
    }

    #[test]
    fn modes_are_mixed_on_rnt_designs() {
        let n = SynthConfig::new("m", 16, 8, 400).generate(7);
        let locked = lock(&n, &LockOptions::new(32, 11)).unwrap();
        // Indirect mode evidence: some key gates feed fresh inverters
        // (mode C), some replaced inverters in place (mode A) and some act
        // as buffers (mode B). At minimum both XOR and XNOR types appear.
        let h = locked.netlist.gate_type_histogram();
        assert!(h.get(&muxlink_netlist::GateType::Xor).copied().unwrap_or(0) > 0);
        assert!(
            h.get(&muxlink_netlist::GateType::Xnor)
                .copied()
                .unwrap_or(0)
                > 0
        );
    }
}
