//! Deceptive MUX-based locking (D-MUX) — strategies S1–S4 and the
//! cost-aware eD-MUX selection policy.
//!
//! D-MUX inserts pairs of wires into key-controlled MUXes such that every
//! MUX data input is equally likely to be the true wire, leaving no
//! structural key leakage:
//!
//! * **S1** — two multi-output nodes `{fi, fj}`, two MUXes, two key bits.
//! * **S2** — two multi-output nodes, one MUX, one key bit.
//! * **S3** — one multi-output node `fi` and one single-output node `fj`,
//!   one MUX (on an output of `fi`), one key bit.
//! * **S4** — no restrictions on `{fi, fj}`; two MUXes share one key bit.
//!
//! All strategies guarantee **no circuit reduction** for any key value
//! (every data wire keeps at least one reader under either selection) and
//! **no combinational loops** (checked via reachability before insertion).
//!
//! The enhanced policy **eD-MUX** (used by the paper's evaluation) draws
//! uniformly from the viable strategies among S1–S3 and falls back to the
//! always-applicable but costlier S4 only when none of them fits.

use muxlink_netlist::Netlist;
use rand::Rng;

use crate::site::{single_mux_locality, LockBuilder};
use crate::{Locality, LockError, LockOptions, LockedNetlist, Strategy};

/// Number of random node-sampling attempts per strategy before it is
/// declared non-viable for the current netlist state.
const TRIES: usize = 64;

/// Locks a design with the eD-MUX policy.
///
/// # Errors
///
/// [`LockError::EmptyKey`] for a zero key size and
/// [`LockError::InsufficientSites`] when the design runs out of viable
/// MUX-pair sites before all key bits are placed.
///
/// # Example
///
/// ```
/// use muxlink_locking::{dmux, LockOptions};
/// let design = muxlink_benchgen::c17();
/// let locked = dmux::lock(&design, &LockOptions::new(4, 1))?;
/// assert_eq!(locked.key.len(), 4);
/// # Ok::<(), muxlink_locking::LockError>(())
/// ```
pub fn lock(netlist: &Netlist, opts: &LockOptions) -> Result<LockedNetlist, LockError> {
    lock_with_strategies(
        netlist,
        opts,
        &[Strategy::S1, Strategy::S2, Strategy::S3],
        true,
    )
}

/// Locks a design using only the given D-MUX strategies (uniformly random
/// among the viable ones each step), optionally falling back to S4.
///
/// # Errors
///
/// As for [`lock`]; additionally every entry of `strategies` must be one of
/// S1–S3 (S4 is reachable via `s4_fallback`).
pub fn lock_with_strategies(
    netlist: &Netlist,
    opts: &LockOptions,
    strategies: &[Strategy],
    s4_fallback: bool,
) -> Result<LockedNetlist, LockError> {
    if opts.key_size == 0 {
        return Err(LockError::EmptyKey);
    }
    assert!(
        strategies
            .iter()
            .all(|s| matches!(s, Strategy::S1 | Strategy::S2 | Strategy::S3)),
        "lock_with_strategies accepts S1-S3 (S4 is the fallback)"
    );
    let mut b = LockBuilder::new(netlist, opts.seed);
    while b.keys_placed() < opts.key_size {
        let remaining = opts.key_size - b.keys_placed();
        // Shuffle the viable preferred strategies.
        let mut pool: Vec<Strategy> = strategies
            .iter()
            .copied()
            .filter(|s| s.key_bits() <= remaining)
            .collect();
        let mut placed = false;
        while !pool.is_empty() {
            let pick = b.rng.gen_range(0..pool.len());
            let strategy = pool.swap_remove(pick);
            let loc = match strategy {
                Strategy::S1 => try_s1(&mut b),
                Strategy::S2 => try_s2(&mut b),
                Strategy::S3 => try_s3(&mut b),
                _ => unreachable!("filtered above"),
            };
            if let Some(loc) = loc {
                b.push_locality(loc);
                placed = true;
                break;
            }
        }
        if placed {
            continue;
        }
        if s4_fallback {
            if let Some(loc) = try_s4(&mut b) {
                b.push_locality(loc);
                continue;
            }
        }
        return Err(LockError::InsufficientSites {
            requested: opts.key_size,
            placed: b.keys_placed(),
        });
    }
    b.finish()
}

/// S1: two multi-output nodes, two MUXes, two individual key bits.
fn try_s1(b: &mut LockBuilder) -> Option<Locality> {
    let multi = b.candidates(Some(true));
    if multi.len() < 2 {
        return None;
    }
    for _ in 0..TRIES {
        let fi = b.choose(&multi)?;
        let fj = b.choose(&multi)?;
        if fi == fj {
            continue;
        }
        let gi = match b.choose(&b.gate_sinks(fi)) {
            Some(g) => g,
            None => continue,
        };
        let gj = match b.choose(&b.gate_sinks(fj)) {
            Some(g) => g,
            None => continue,
        };
        if gi == gj || !b.can_insert(fi, fj, gi) || !b.can_insert(fj, fi, gj) {
            continue;
        }
        let ki_val = b.rng.gen::<bool>();
        let kj_val = b.rng.gen::<bool>();
        let (ki, ki_net) = b.add_key_input(ki_val);
        let (kj, kj_net) = b.add_key_input(kj_val);
        let m1 = b.insert_mux(ki, ki_net, ki_val, fi, fj, gi);
        let m2 = b.insert_mux(kj, kj_net, kj_val, fj, fi, gj);
        return Some(Locality {
            strategy: Strategy::S1,
            muxes: vec![m1, m2],
            xors: Vec::new(),
            key_bits: vec![ki, kj],
        });
    }
    None
}

/// S2: two multi-output nodes, one MUX on a random output of a random one.
fn try_s2(b: &mut LockBuilder) -> Option<Locality> {
    let multi = b.candidates(Some(true));
    if multi.len() < 2 {
        return None;
    }
    for _ in 0..TRIES {
        let fi = b.choose(&multi)?;
        let fj = b.choose(&multi)?;
        if fi == fj {
            continue;
        }
        // Randomly choose which of the pair gets locked.
        let (f_sel, f_other) = if b.rng.gen() { (fi, fj) } else { (fj, fi) };
        let g = match b.choose(&b.gate_sinks(f_sel)) {
            Some(g) => g,
            None => continue,
        };
        if !b.can_insert(f_sel, f_other, g) {
            continue;
        }
        let k_val = b.rng.gen::<bool>();
        let (k, k_net) = b.add_key_input(k_val);
        let m = b.insert_mux(k, k_net, k_val, f_sel, f_other, g);
        return Some(single_mux_locality(Strategy::S2, m));
    }
    None
}

/// S3: one multi-output node `fi` (locked) + one single-output decoy `fj`.
fn try_s3(b: &mut LockBuilder) -> Option<Locality> {
    let multi = b.candidates(Some(true));
    let single = b.candidates(Some(false));
    if multi.is_empty() || single.is_empty() {
        return None;
    }
    for _ in 0..TRIES {
        let fi = b.choose(&multi)?;
        let fj = b.choose(&single)?;
        if fi == fj {
            continue;
        }
        let g = match b.choose(&b.gate_sinks(fi)) {
            Some(g) => g,
            None => continue,
        };
        if !b.can_insert(fi, fj, g) {
            continue;
        }
        let k_val = b.rng.gen::<bool>();
        let (k, k_net) = b.add_key_input(k_val);
        let m = b.insert_mux(k, k_net, k_val, fi, fj, g);
        return Some(single_mux_locality(Strategy::S3, m));
    }
    None
}

/// S4: unrestricted nodes; one key bit drives two MUXes whose data inputs
/// appear in opposite orders.
fn try_s4(b: &mut LockBuilder) -> Option<Locality> {
    let any = b.candidates(None);
    if any.len() < 2 {
        return None;
    }
    // S4 is the last resort, so try harder before giving up.
    for _ in 0..TRIES * 4 {
        let fi = b.choose(&any)?;
        let fj = b.choose(&any)?;
        if fi == fj {
            continue;
        }
        let gi = match b.choose(&b.gate_sinks(fi)) {
            Some(g) => g,
            None => continue,
        };
        let gj = match b.choose(&b.gate_sinks(fj)) {
            Some(g) => g,
            None => continue,
        };
        if gi == gj || !b.can_insert(fi, fj, gi) || !b.can_insert(fj, fi, gj) {
            continue;
        }
        let k_val = b.rng.gen::<bool>();
        let (k, k_net) = b.add_key_input(k_val);
        let m1 = b.insert_mux(k, k_net, k_val, fi, fj, gi);
        let m2 = b.insert_mux(k, k_net, k_val, fj, fi, gj);
        return Some(Locality {
            strategy: Strategy::S4,
            muxes: vec![m1, m2],
            xors: Vec::new(),
            key_bits: vec![k],
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_key;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_netlist::sim::exhaustive_equiv;
    use muxlink_netlist::GateType;

    fn medium() -> Netlist {
        SynthConfig::new("m", 16, 8, 300).generate(42)
    }

    #[test]
    fn lock_places_exact_key_size() {
        let n = medium();
        for k in [1, 7, 32] {
            let locked = lock(&n, &LockOptions::new(k, 5)).unwrap();
            assert_eq!(locked.key.len(), k);
            assert_eq!(locked.key_inputs.len(), k);
            assert!(locked.netlist.validate().is_ok());
        }
    }

    #[test]
    fn locked_design_is_correct_under_right_key() {
        let n = medium();
        let locked = lock(&n, &LockOptions::new(16, 3)).unwrap();
        let recovered = apply_key(&locked, &locked.key).unwrap();
        assert!(exhaustive_equiv(&n, &recovered).unwrap());
    }

    #[test]
    fn wrong_key_corrupts_function() {
        let n = medium();
        let locked = lock(&n, &LockOptions::new(16, 3)).unwrap();
        let mut wrong_bits = locked.key.bits().to_vec();
        for b in &mut wrong_bits {
            *b = !*b;
        }
        let wrong = apply_key(&locked, &crate::Key::from_bits(wrong_bits)).unwrap();
        assert!(!exhaustive_equiv(&n, &wrong).unwrap());
    }

    #[test]
    fn mux_count_matches_localities() {
        let n = medium();
        let locked = lock(&n, &LockOptions::new(24, 9)).unwrap();
        let muxes = locked
            .netlist
            .gates()
            .filter(|(_, g)| g.ty() == GateType::Mux)
            .count();
        let expected: usize = locked.localities.iter().map(|l| l.muxes.len()).sum();
        assert_eq!(muxes, expected);
        let key_bits: usize = locked.localities.iter().map(|l| l.key_bits.len()).sum();
        assert_eq!(key_bits, 24);
    }

    #[test]
    fn no_circuit_reduction_for_any_single_key_flip() {
        // The central D-MUX guarantee: hard-coding a key bit either way
        // must not strand logic.
        let n = medium();
        let locked = lock(&n, &LockOptions::new(8, 11)).unwrap();
        for bit in 0..8 {
            let mut sizes = Vec::new();
            for v in [false, true] {
                let mut consts = std::collections::HashMap::new();
                consts.insert(format!("keyinput{bit}"), v);
                let re = muxlink_netlist::opt::resynthesize(&locked.netlist, &consts).unwrap();
                sizes.push(re.gate_count() as i64);
            }
            // Resynthesis folds buffers/MUXes either way (and reconvergent
            // structure lets a couple of extra gates fold on one side);
            // what D-MUX guarantees is that neither key value strands a
            // whole logic cone, so the cofactors stay essentially the
            // same size — far from the cone-sized collapse naive MUX
            // locking exhibits.
            assert!(
                (sizes[0] - sizes[1]).abs() <= 8,
                "bit {bit}: cofactor sizes diverge {sizes:?}"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let n = medium();
        let a = lock(&n, &LockOptions::new(8, 1)).unwrap();
        let b = lock(&n, &LockOptions::new(8, 1)).unwrap();
        assert_eq!(
            muxlink_netlist::bench_format::write(&a.netlist).unwrap(),
            muxlink_netlist::bench_format::write(&b.netlist).unwrap()
        );
        assert_eq!(a.key, b.key);
        let c = lock(&n, &LockOptions::new(8, 2)).unwrap();
        assert_ne!(a.key.bits(), c.key.bits());
    }

    #[test]
    fn zero_key_rejected() {
        let n = medium();
        assert!(matches!(
            lock(&n, &LockOptions::new(0, 0)),
            Err(LockError::EmptyKey)
        ));
    }

    #[test]
    fn strategies_are_recorded() {
        let n = medium();
        let locked = lock(&n, &LockOptions::new(32, 17)).unwrap();
        assert!(!locked.localities.is_empty());
        for loc in &locked.localities {
            assert!(matches!(
                loc.strategy,
                Strategy::S1 | Strategy::S2 | Strategy::S3 | Strategy::S4
            ));
            assert_eq!(loc.key_bits.len(), loc.strategy.key_bits());
            assert_eq!(loc.muxes.len(), loc.strategy.mux_count());
        }
    }

    #[test]
    fn tiny_design_runs_out_of_sites() {
        // c17 has 6 gates; asking for 64 bits must fail gracefully.
        let n = muxlink_benchgen::c17();
        match lock(&n, &LockOptions::new(64, 0)) {
            Err(LockError::InsufficientSites { requested, placed }) => {
                assert_eq!(requested, 64);
                assert!(placed < 64);
            }
            other => panic!("expected InsufficientSites, got {other:?}"),
        }
    }

    #[test]
    fn s1_only_uses_two_bits_per_locality() {
        let n = medium();
        let locked =
            lock_with_strategies(&n, &LockOptions::new(8, 21), &[Strategy::S1], false).unwrap();
        for loc in &locked.localities {
            assert_eq!(loc.strategy, Strategy::S1);
            assert_eq!(loc.key_bits.len(), 2);
        }
        assert_eq!(locked.localities.len(), 4);
    }
}
