use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The value an attack assigns to one key bit: a concrete guess or an
/// abstention (`X`), which the paper's precision metric counts as correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyValue {
    /// Key bit is 0.
    Zero,
    /// Key bit is 1.
    One,
    /// The attack declined to guess this bit.
    X,
}

impl KeyValue {
    /// Concrete boolean value, or `None` for `X`.
    #[must_use]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Self::Zero => Some(false),
            Self::One => Some(true),
            Self::X => None,
        }
    }

    /// Builds a concrete value from a boolean.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Self::One
        } else {
            Self::Zero
        }
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Zero => f.write_str("0"),
            Self::One => f.write_str("1"),
            Self::X => f.write_str("X"),
        }
    }
}

/// A fully specified secret key: the defender's ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Wraps explicit bits.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Samples a uniformly random key (deterministic in `seed`).
    #[must_use]
    pub fn random(len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            bits: (0..len).map(|_| rng.gen()).collect(),
        }
    }

    /// Number of key bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the key has no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// All bits in order.
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The key as attack-style [`KeyValue`]s (no `X` entries).
    #[must_use]
    pub fn to_values(&self) -> Vec<KeyValue> {
        self.bits.iter().map(|&b| KeyValue::from_bool(b)).collect()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Key::random(64, 1), Key::random(64, 1));
        assert_ne!(Key::random(64, 1), Key::random(64, 2));
    }

    #[test]
    fn display_renders_bits() {
        let k = Key::from_bits(vec![true, false, true]);
        assert_eq!(k.to_string(), "101");
        assert_eq!(KeyValue::X.to_string(), "X");
    }

    #[test]
    fn values_round_trip() {
        let k = Key::random(16, 9);
        let vals = k.to_values();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(v.as_bool(), Some(k.bit(i)));
        }
        assert_eq!(KeyValue::X.as_bool(), None);
    }

    #[test]
    fn empty_key() {
        let k = Key::from_bits(vec![]);
        assert!(k.is_empty());
        assert_eq!(k.len(), 0);
    }
}
