//! # muxlink-locking
//!
//! Logic-locking substrate for the MuxLink reproduction.
//!
//! Implements the two "learning-resilient" defenses the paper attacks plus
//! the two background baselines from its Fig. 1:
//!
//! * **D-MUX** (Sisejkovic et al., TCAD 2021): locking strategies S1–S4 and
//!   the cost-aware **eD-MUX** policy (S4 only when S1–S3 are not viable) —
//!   [`dmux`].
//! * **Symmetric MUX-based locking** (Alaql et al., TVLSI 2021): strategy
//!   S5 — [`symmetric`].
//! * **XOR/XNOR locking** (classic; leaks the key through the gate type) —
//!   [`xor`].
//! * **Naive MUX locking** (no fan-out discipline; vulnerable to SAAM) —
//!   [`naive_mux`].
//!
//! All schemes return a [`LockedNetlist`]: the locked circuit, the correct
//! key, and per-locality metadata (which MUX belongs to which key bit and
//! which data input is the true wire) used by the evaluation harness to
//! score attacks. The metadata is of course **not** available to attacks —
//! they only receive [`LockedNetlist::netlist`] and the key-input names,
//! exactly the oracle-less threat model of the paper.
//!
//! # Example
//!
//! ```
//! use muxlink_locking::{dmux, LockOptions};
//!
//! # fn main() -> Result<(), muxlink_locking::LockError> {
//! let design = muxlink_benchgen::c17();
//! let locked = dmux::lock(&design, &LockOptions::new(2, 7))?;
//! assert_eq!(locked.key.len(), 2);
//! // The locked netlist gained key inputs and MUX gates.
//! assert!(locked.netlist.inputs().len() > design.inputs().len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
pub mod dmux;
mod error;
mod key;
mod locked;
pub mod naive_mux;
mod site;
pub mod symmetric;
pub mod trll;
pub mod xor;

pub use apply::{apply_key, apply_key_values};
pub use error::LockError;
pub use key::{Key, KeyValue};
pub use locked::{KeyGate, Locality, LockedNetlist, MuxInstance, Strategy};
pub use site::KEY_INPUT_PREFIX;

/// Options shared by all locking schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockOptions {
    /// Number of key bits to insert.
    pub key_size: usize,
    /// RNG seed controlling site selection and key-bit values.
    pub seed: u64,
}

impl LockOptions {
    /// Creates options for a `key_size`-bit lock with the given seed.
    #[must_use]
    pub fn new(key_size: usize, seed: u64) -> Self {
        Self { key_size, seed }
    }
}
