//! The attack engine: job queue, worker pool, single-flight coalescing
//! and the cache-aware submit path — everything the daemon does
//! *except* sockets, so the whole lifecycle is testable in-process.
//!
//! ## Submit flow
//!
//! 1. resolve the netlist (inline text or daemon-side path), derive the
//!    key-input names and the [`DesignFingerprint`];
//! 2. under the in-flight lock: attach to an identical in-flight job if
//!    one exists (**single-flight** — the same design with the same
//!    recipe never trains twice concurrently), otherwise consult the
//!    [`CheckpointCache`];
//! 3. a cache hit is **verified** against the incoming netlist
//!    ([`Trained::verify_design`]) and against the requested training
//!    recipe before reuse; verification failure expels the entry and
//!    falls through to a fresh train, a recipe mismatch simply retrains
//!    (latest recipe wins the cache slot);
//! 4. verified hits are scored on the submitting thread (milliseconds)
//!    and answered inline; misses become queued jobs.
//!
//! Workers re-check the cache when they dequeue a job — a duplicate
//! submit that queued behind the first train of a design completes as a
//! cache hit instead of training again.
//!
//! ## Error isolation
//!
//! Worker panics are caught ([`std::panic::catch_unwind`]) and recorded
//! as job failures; poisoned locks are recovered (every critical
//! section leaves coherent state); a subscriber whose connection died
//! is dropped at the next event. Nothing a single job does can take
//! down the daemon or wedge a worker.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use muxlink_core::{
    key_input_names, AttackSession, DesignFingerprint, EpochStats, MuxLinkConfig, NoProgress,
    Progress, ScoredDesign, Stage, Trained,
};
use muxlink_locking::KeyValue;
use muxlink_netlist::{bench_format, Netlist};

use crate::cache::CheckpointCache;
use crate::proto::{
    render_response, EventMsg, JobKind, Response, ResultResponse, StatsResponse, StatusResponse,
    SubmitRequest, SweepRow, PROTOCOL_VERSION,
};

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// On-disk checkpoint store (`None` = memory-only cache).
    pub cache_dir: Option<PathBuf>,
    /// In-memory LRU capacity.
    pub cache_entries: usize,
    /// Worker threads draining the job queue.
    pub workers: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            cache_dir: None,
            cache_entries: 8,
            workers: 1,
        }
    }
}

/// Terminal or in-progress state of a job.
enum JobState {
    Queued,
    Running,
    Done(Box<ResultResponse>),
    Failed(String),
    Cancelled,
}

impl JobState {
    fn is_terminal(&self) -> bool {
        !matches!(self, Self::Queued | Self::Running)
    }

    fn name(&self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done(_) => "done",
            Self::Failed(_) => "failed",
            Self::Cancelled => "cancelled",
        }
    }
}

struct JobEntry {
    id: u64,
    /// Fingerprint hex — the cache key.
    key_hex: String,
    /// `fingerprint hex + normalised config` — the single-flight
    /// identity (two submits coalesce only when this matches, so a
    /// different recipe or threshold never silently adopts another
    /// job's result).
    identity: String,
    kind: JobKind,
    netlist: Netlist,
    names: Vec<String>,
    cfg: MuxLinkConfig,
    cancel: muxlink_core::CancelFlag,
    state: Mutex<JobState>,
    done: Condvar,
    /// Pre-rendered NDJSON event lines go to these; cleared when the
    /// job reaches a terminal state, which hangs up every streaming
    /// receiver.
    subscribers: Mutex<Vec<mpsc::Sender<String>>>,
    epochs_done: AtomicUsize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl JobEntry {
    fn set_state(&self, next: JobState) {
        *lock(&self.state) = next;
        self.done.notify_all();
        // Hang up streamers: their `Receiver` iteration ends when the
        // last sender drops.
        lock(&self.subscribers).clear();
    }

    fn broadcast(&self, line: &str) {
        lock(&self.subscribers).retain(|tx| tx.send(line.to_owned()).is_ok());
    }
}

/// Per-job [`Progress`] bridge: counts epochs, streams events, polls
/// the job's cancel flag.
struct JobProgress<'a> {
    job: &'a JobEntry,
}

impl Progress for JobProgress<'_> {
    fn stage_started(&self, stage: Stage) {
        self.job
            .broadcast(&render_response(&Response::Event(EventMsg {
                event: "stage".to_owned(),
                job_id: self.job.id,
                epoch: None,
                train_loss: None,
                val_accuracy: None,
                stage: Some(stage.to_string()),
                seconds: None,
            })));
    }

    fn stage_finished(&self, stage: Stage, elapsed: std::time::Duration) {
        self.job
            .broadcast(&render_response(&Response::Event(EventMsg {
                event: "stage".to_owned(),
                job_id: self.job.id,
                epoch: None,
                train_loss: None,
                val_accuracy: None,
                stage: Some(stage.to_string()),
                seconds: Some(elapsed.as_secs_f64()),
            })));
    }

    fn epoch_finished(&self, stats: &EpochStats) {
        self.job.epochs_done.fetch_add(1, Ordering::Relaxed);
        self.job
            .broadcast(&render_response(&Response::Event(EventMsg {
                event: "epoch".to_owned(),
                job_id: self.job.id,
                epoch: Some(stats.epoch),
                train_loss: Some(stats.train_loss),
                val_accuracy: Some(stats.val_accuracy),
                stage: None,
                seconds: None,
            })));
    }

    fn cancelled(&self) -> bool {
        // `CancelFlag` exposes its state through its own `Progress`
        // impl.
        Progress::cancelled(&self.job.cancel)
    }
}

/// Outcome of [`Engine::submit`].
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Served inline from a verified cache hit — no job was queued.
    Ready(Box<ResultResponse>),
    /// A job was queued (or the submit attached to an identical
    /// in-flight job).
    Queued {
        /// Job to poll / wait on.
        job_id: u64,
        /// Fingerprint hex.
        key: String,
        /// Whether this submit attached to an in-flight identical job
        /// instead of queueing its own.
        coalesced: bool,
    },
}

/// The daemon's core: shared by every connection handler and worker.
pub struct Engine {
    cache: CheckpointCache,
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    /// Fingerprint hex → active (queued or running) job ids.
    inflight: Mutex<HashMap<String, Vec<u64>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    started: Instant,
    worker_count: usize,
    submitted: AtomicU64,
    done_jobs: AtomicU64,
    failed_jobs: AtomicU64,
    cancelled_jobs: AtomicU64,
    trainings: AtomicU64,
    coalesced_submits: AtomicU64,
    running_jobs: AtomicUsize,
}

/// The single-flight identity of a submit: the design fingerprint plus
/// the full configuration with the thread count neutralised (results
/// are thread-count invariant; everything else — recipe *and*
/// threshold — must match for two submits to share one job).
fn job_identity(key_hex: &str, cfg: &MuxLinkConfig) -> String {
    let mut normal = cfg.clone();
    normal.threads = 0;
    let cfg_json = serde_json::to_string(&normal).expect("config always serialises");
    format!("{key_hex}:{cfg_json}")
}

/// Whether a cached checkpoint's training recipe satisfies a request.
/// The threshold and thread count are free (scoring re-applies both);
/// every other field is part of the recipe.
fn recipe_matches(cached: &MuxLinkConfig, requested: &MuxLinkConfig) -> bool {
    let mut a = cached.clone();
    let mut b = requested.clone();
    a.th = 0.0;
    b.th = 0.0;
    a.threads = 0;
    b.threads = 0;
    a == b
}

fn render_guess(guess: &[KeyValue]) -> (String, usize) {
    let rendered: String = guess.iter().map(ToString::to_string).collect();
    let decided = guess.iter().filter(|v| **v != KeyValue::X).count();
    (rendered, decided)
}

fn result_from_scored(
    job_id: Option<u64>,
    key_hex: &str,
    cache_hit: bool,
    scored: &ScoredDesign,
    th: f64,
    train_seconds: f64,
) -> ResultResponse {
    let guess = scored.recover_key(th);
    let (key_string, decided) = render_guess(&guess);
    ResultResponse {
        job_id,
        key: key_hex.to_owned(),
        cache_hit,
        coalesced: false,
        key_string,
        decided,
        key_len: scored.key_len,
        scores: scored.scores.clone(),
        th,
        val_accuracy: scored.train_report.best_val_accuracy,
        epochs: scored.train_report.history.len(),
        train_seconds,
        score_seconds: scored.timings.score.as_secs_f64(),
    }
}

impl Engine {
    /// Builds an engine (cache dir created if configured). Workers are
    /// spawned separately with [`Engine::spawn_workers`].
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the cache directory cannot be created.
    pub fn new(opts: &EngineOptions) -> std::io::Result<Arc<Self>> {
        Ok(Arc::new(Self {
            cache: CheckpointCache::new(opts.cache_dir.clone(), opts.cache_entries)?,
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            worker_count: opts.workers.max(1),
            submitted: AtomicU64::new(0),
            done_jobs: AtomicU64::new(0),
            failed_jobs: AtomicU64::new(0),
            cancelled_jobs: AtomicU64::new(0),
            trainings: AtomicU64::new(0),
            coalesced_submits: AtomicU64::new(0),
            running_jobs: AtomicUsize::new(0),
        }))
    }

    /// Spawns the worker pool; join the handles after
    /// [`Engine::begin_drain`] for a graceful exit.
    pub fn spawn_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.worker_count)
            .map(|i| {
                let engine = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("muxlink-worker-{i}"))
                    .spawn(move || engine.worker_loop())
                    .expect("spawning a worker thread")
            })
            .collect()
    }

    /// Stops accepting submits and tells idle workers to exit once the
    /// queue is empty; already-queued and running jobs are drained.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// Whether [`Engine::begin_drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn resolve_netlist(sreq: &SubmitRequest) -> Result<Netlist, String> {
        if let Some(text) = &sreq.netlist {
            return bench_format::parse("design", text).map_err(|e| format!("inline netlist: {e}"));
        }
        let path = sreq
            .netlist_path
            .as_ref()
            .ok_or("submit needs `netlist` (inline text) or `netlist_path`")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("design");
        bench_format::parse(name, &text).map_err(|e| format!("{path}: {e}"))
    }

    fn build_cfg(sreq: &SubmitRequest) -> Result<MuxLinkConfig, String> {
        if sreq.job == JobKind::Score
            && (sreq.paper
                || sreq.hops.is_some()
                || sreq.seed.is_some()
                || sreq.batch_size.is_some())
        {
            return Err(
                "score jobs reuse a cached checkpoint and cannot override the training recipe \
                 (only `th` and `threads`)"
                    .into(),
            );
        }
        let mut cfg = if sreq.paper {
            MuxLinkConfig::paper()
        } else {
            MuxLinkConfig::quick()
        };
        if let Some(x) = sreq.th {
            cfg.th = x;
        }
        if let Some(x) = sreq.hops {
            cfg.h = x;
        }
        if let Some(x) = sreq.seed {
            cfg.seed = x;
        }
        if let Some(x) = sreq.threads {
            cfg.threads = x;
        }
        if let Some(x) = sreq.batch_size {
            cfg.batch_size = x;
        }
        Ok(cfg)
    }

    /// Serves a verified cache hit hot: clone the checkpoint, apply the
    /// request's threshold/threads, score (milliseconds) and recover.
    fn serve_hot(
        &self,
        key_hex: &str,
        entry: &Trained,
        cfg: &MuxLinkConfig,
        job_id: Option<u64>,
    ) -> Result<ResultResponse, String> {
        let mut hot = entry.clone();
        hot.cfg.th = cfg.th;
        hot.cfg.threads = cfg.threads;
        let scored = hot.score(&NoProgress).map_err(|e| e.to_string())?;
        Ok(result_from_scored(
            job_id, key_hex, true, &scored, cfg.th, 0.0,
        ))
    }

    /// Submits a job. Returns [`SubmitOutcome::Ready`] when a verified
    /// cache hit answered inline, otherwise
    /// [`SubmitOutcome::Queued`].
    ///
    /// # Errors
    ///
    /// A wire-ready message: unresolvable netlist, not a locked design,
    /// invalid override combination, `score` without a cached
    /// checkpoint, or the daemon draining.
    pub fn submit(&self, sreq: &SubmitRequest) -> Result<SubmitOutcome, String> {
        if self.is_draining() {
            return Err("daemon is shutting down; submit rejected".into());
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let netlist = Self::resolve_netlist(sreq)?;
        let names = key_input_names(&netlist);
        if names.is_empty() {
            return Err("no keyinput* nets found — is this a locked design?".into());
        }
        let cfg = Self::build_cfg(sreq)?;
        let key_hex = DesignFingerprint::of_netlist(&netlist, &names)
            .map_err(|e| e.to_string())?
            .to_hex();
        let identity = job_identity(&key_hex, &cfg);

        // The single-flight critical section: in-flight check, cache
        // lookup and (on a miss) job registration happen under one
        // lock, so two identical submits can never both queue a train.
        // Verification and hot scoring run outside it.
        loop {
            let entry = {
                let mut inflight = lock(&self.inflight);
                if let Some(active) = inflight.get(&key_hex) {
                    let jobs = lock(&self.jobs);
                    // A job that already finished (but whose worker has
                    // not yet swept the in-flight map) is never worth
                    // attaching to — its checkpoint is in the cache, so
                    // fall through to the lookup instead of spinning on
                    // wait-and-resubmit.
                    let same = active.iter().find(|id| {
                        jobs.get(id).is_some_and(|j| {
                            !lock(&j.state).is_terminal()
                                && (j.identity == identity
                                    || (sreq.job == JobKind::Score && j.kind != JobKind::Score))
                        })
                    });
                    if let Some(&id) = same {
                        self.coalesced_submits.fetch_add(1, Ordering::Relaxed);
                        return Ok(SubmitOutcome::Queued {
                            job_id: id,
                            key: key_hex,
                            coalesced: true,
                        });
                    }
                }
                match self.cache.lookup(&key_hex) {
                    Some(entry) => entry,
                    None => {
                        if sreq.job == JobKind::Score {
                            return Err(format!(
                                "no cached checkpoint for design {key_hex}; submit an attack or \
                                 train job first"
                            ));
                        }
                        let job =
                            self.register_job(sreq.job, &key_hex, &identity, netlist, names, cfg);
                        inflight.entry(key_hex.clone()).or_default().push(job.id);
                        drop(inflight);
                        self.enqueue(job.id);
                        return Ok(SubmitOutcome::Queued {
                            job_id: job.id,
                            key: key_hex,
                            coalesced: false,
                        });
                    }
                }
            };
            // Outside the lock: verify the entry belongs to this exact
            // netlist, then check the recipe.
            if entry.verify_design(&netlist, &names).is_err() {
                // A colliding or stale artifact under this key: expel
                // it and retry the loop (someone else may have
                // registered a job meanwhile — the re-lock handles it).
                self.cache.reject(&key_hex);
                continue;
            }
            if sreq.job != JobKind::Score && !recipe_matches(&entry.cfg, &cfg) {
                // Same design, different training recipe: the cache
                // cannot answer this; train fresh (the new checkpoint
                // overwrites the slot — latest recipe wins). Re-check
                // single-flight under the lock: an identical submit may
                // have registered while we verified.
                let mut inflight = lock(&self.inflight);
                if let Some(active) = inflight.get(&key_hex) {
                    let jobs = lock(&self.jobs);
                    if let Some(&id) = active.iter().find(|id| {
                        jobs.get(id).is_some_and(|j| {
                            !lock(&j.state).is_terminal() && j.identity == identity
                        })
                    }) {
                        self.coalesced_submits.fetch_add(1, Ordering::Relaxed);
                        return Ok(SubmitOutcome::Queued {
                            job_id: id,
                            key: key_hex,
                            coalesced: true,
                        });
                    }
                }
                let job = self.register_job(sreq.job, &key_hex, &identity, netlist, names, cfg);
                inflight.entry(key_hex.clone()).or_default().push(job.id);
                drop(inflight);
                self.enqueue(job.id);
                return Ok(SubmitOutcome::Queued {
                    job_id: job.id,
                    key: key_hex,
                    coalesced: false,
                });
            }
            let result = self.serve_hot(&key_hex, &entry, &cfg, None)?;
            return Ok(SubmitOutcome::Ready(Box::new(result)));
        }
    }

    fn register_job(
        &self,
        kind: JobKind,
        key_hex: &str,
        identity: &str,
        netlist: Netlist,
        names: Vec<String>,
        cfg: MuxLinkConfig,
    ) -> Arc<JobEntry> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(JobEntry {
            id,
            key_hex: key_hex.to_owned(),
            identity: identity.to_owned(),
            kind,
            netlist,
            names,
            cfg,
            cancel: muxlink_core::CancelFlag::new(),
            state: Mutex::new(JobState::Queued),
            done: Condvar::new(),
            subscribers: Mutex::new(Vec::new()),
            epochs_done: AtomicUsize::new(0),
        });
        let mut jobs = lock(&self.jobs);
        // Bound the registry: terminal jobs whose results nobody
        // fetched must not accumulate netlists forever in a
        // long-running daemon. Oldest terminal entries go first;
        // live jobs are never pruned.
        if jobs.len() >= MAX_RETAINED_JOBS {
            let mut terminal: Vec<u64> = jobs
                .iter()
                .filter(|(_, j)| lock(&j.state).is_terminal())
                .map(|(&jid, _)| jid)
                .collect();
            terminal.sort_unstable();
            for jid in terminal
                .into_iter()
                .take(jobs.len() + 1 - MAX_RETAINED_JOBS)
            {
                jobs.remove(&jid);
            }
        }
        jobs.insert(id, Arc::clone(&job));
        job
    }

    fn enqueue(&self, id: u64) {
        lock(&self.queue).push_back(id);
        self.queue_cv.notify_one();
    }

    fn job(&self, id: u64) -> Result<Arc<JobEntry>, String> {
        lock(&self.jobs)
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("unknown job id {id}"))
    }

    /// Subscribes `tx` to a job's pre-rendered NDJSON event lines. The
    /// sender is dropped (hanging up the receiver) when the job reaches
    /// a terminal state. A no-op for already-terminal jobs.
    ///
    /// # Errors
    ///
    /// When the job id is unknown.
    pub fn subscribe(&self, job_id: u64, tx: mpsc::Sender<String>) -> Result<(), String> {
        let job = self.job(job_id)?;
        let mut subs = lock(&job.subscribers);
        if !lock(&job.state).is_terminal() {
            subs.push(tx);
        }
        Ok(())
    }

    /// Non-blocking job state.
    ///
    /// # Errors
    ///
    /// When the job id is unknown.
    pub fn status(&self, job_id: u64) -> Result<StatusResponse, String> {
        let job = self.job(job_id)?;
        let state = lock(&job.state);
        Ok(StatusResponse {
            job_id,
            state: state.name().to_owned(),
            key: job.key_hex.clone(),
            epochs_done: job.epochs_done.load(Ordering::Relaxed),
            error: match &*state {
                JobState::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
        })
    }

    /// Blocks until the job is terminal and returns its result.
    ///
    /// # Errors
    ///
    /// The job's failure message, a cancellation notice, or an unknown
    /// job id.
    pub fn wait_result(&self, job_id: u64) -> Result<ResultResponse, String> {
        let job = self.job(job_id)?;
        let mut state = lock(&job.state);
        while !state.is_terminal() {
            state = job
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        match &*state {
            JobState::Done(result) => Ok((**result).clone()),
            JobState::Failed(msg) => Err(msg.clone()),
            JobState::Cancelled => Err(format!("job {job_id} was cancelled")),
            JobState::Queued | JobState::Running => unreachable!("loop exits on terminal state"),
        }
    }

    /// Submits and blocks until a result is available, transparently
    /// chasing single-flight attachments: when the submit coalesced
    /// onto an in-flight job, waits for that job and resubmits — the
    /// resubmit is then answered from the cache with **this** request's
    /// threshold, verified against **this** request's netlist.
    ///
    /// `on_event` (when given) receives the job's pre-rendered NDJSON
    /// event lines on the calling thread while waiting.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`] / [`Engine::wait_result`].
    pub fn run_to_completion(
        &self,
        sreq: &SubmitRequest,
        mut on_event: Option<&mut dyn FnMut(String)>,
    ) -> Result<ResultResponse, String> {
        let mut coalesced = false;
        // Bounded: each pass either returns or waits out one in-flight
        // job; pathological churn (trains keep failing over and over)
        // ends in the last pass's error rather than livelock.
        for _ in 0..8 {
            match self.submit(sreq)? {
                SubmitOutcome::Ready(mut result) => {
                    result.coalesced |= coalesced;
                    return Ok(*result);
                }
                SubmitOutcome::Queued {
                    job_id,
                    coalesced: true,
                    ..
                } => {
                    coalesced = true;
                    // The primary's own failure is not ours to report:
                    // the retry either hits the cache it filled, or
                    // queues a fresh job of our own.
                    let _ = self.wait_result(job_id);
                }
                SubmitOutcome::Queued { job_id, .. } => {
                    if let Some(cb) = on_event.as_mut() {
                        let (tx, rx) = mpsc::channel();
                        self.subscribe(job_id, tx)?;
                        for line in rx {
                            cb(line);
                        }
                    }
                    let mut result = self.wait_result(job_id)?;
                    result.coalesced |= coalesced;
                    return Ok(result);
                }
            }
        }
        Err("submit kept attaching to failing in-flight jobs; giving up".into())
    }

    /// Threshold-sweeps a cached checkpoint (never trains).
    ///
    /// # Errors
    ///
    /// A malformed key, or no cached checkpoint under it.
    pub fn sweep(&self, key: &str, thresholds: &[f64]) -> Result<Vec<SweepRow>, String> {
        DesignFingerprint::parse(key)?;
        let entry = self.cache.lookup(key).ok_or_else(|| {
            format!("no cached checkpoint for design {key}; submit an attack or train job first")
        })?;
        let scored = entry.score(&NoProgress).map_err(|e| e.to_string())?;
        Ok(thresholds
            .iter()
            .map(|&th| {
                let (key_string, decided) = render_guess(&scored.recover_key(th));
                SweepRow {
                    th,
                    key_string,
                    decided,
                }
            })
            .collect())
    }

    /// Cooperatively cancels a job: queued jobs are resolved
    /// immediately, running jobs observe the flag at the next batch
    /// boundary.
    ///
    /// # Errors
    ///
    /// When the job id is unknown.
    pub fn cancel(&self, job_id: u64) -> Result<(), String> {
        let job = self.job(job_id)?;
        job.cancel.cancel();
        let mut state = lock(&job.state);
        if matches!(&*state, JobState::Queued) {
            *state = JobState::Cancelled;
            drop(state);
            job.done.notify_all();
            lock(&job.subscribers).clear();
            self.cancelled_jobs.fetch_add(1, Ordering::Relaxed);
            self.remove_inflight(&job);
        }
        Ok(())
    }

    /// Counter snapshot for the `stats` request.
    #[must_use]
    pub fn stats(&self) -> StatsResponse {
        let cache = self.cache.stats();
        StatsResponse {
            protocol: PROTOCOL_VERSION,
            workers: self.worker_count,
            jobs_submitted: self.submitted.load(Ordering::Relaxed),
            jobs_queued: lock(&self.queue).len(),
            jobs_running: self.running_jobs.load(Ordering::Relaxed),
            jobs_done: self.done_jobs.load(Ordering::Relaxed),
            jobs_failed: self.failed_jobs.load(Ordering::Relaxed),
            jobs_cancelled: self.cancelled_jobs.load(Ordering::Relaxed),
            trainings: self.trainings.load(Ordering::Relaxed),
            coalesced_submits: self.coalesced_submits.load(Ordering::Relaxed),
            cache_memory_entries: self.cache.memory_len(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_disk_hits: cache.disk_hits,
            cache_insertions: cache.insertions,
            cache_evictions: cache.evictions,
            cache_verify_rejections: cache.verify_rejections,
            uptime_seconds: self.started.elapsed().as_secs_f64(),
        }
    }

    // -- worker side ---------------------------------------------------

    fn worker_loop(self: Arc<Self>) {
        loop {
            let id = {
                let mut queue = lock(&self.queue);
                loop {
                    if let Some(id) = queue.pop_front() {
                        break id;
                    }
                    if self.is_draining() {
                        return;
                    }
                    queue = self
                        .queue_cv
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.run_job(id);
        }
    }

    fn remove_inflight(&self, job: &JobEntry) {
        let mut inflight = lock(&self.inflight);
        if let Some(active) = inflight.get_mut(&job.key_hex) {
            active.retain(|&id| id != job.id);
            if active.is_empty() {
                inflight.remove(&job.key_hex);
            }
        }
    }

    fn run_job(&self, id: u64) {
        let Ok(job) = self.job(id) else { return };
        {
            let mut state = lock(&job.state);
            if state.is_terminal() {
                // Cancelled while queued.
                return;
            }
            *state = JobState::Running;
        }
        self.running_jobs.fetch_add(1, Ordering::Relaxed);
        // A panicking job must not take its worker down with it: catch,
        // record, move on. `AssertUnwindSafe` is sound here because the
        // closure only hands out `&job`/`&self` state that is either
        // atomically updated or re-acquired through poison-recovering
        // locks.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(&job)))
            .unwrap_or_else(|_| Err("internal error: job panicked (worker recovered)".into()));
        self.running_jobs.fetch_sub(1, Ordering::Relaxed);
        // Release the single-flight slot *before* publishing the
        // terminal state: a waiter woken by `set_state` must find the
        // in-flight map already swept, or its resubmit would re-attach
        // to this finished job.
        self.remove_inflight(&job);
        match outcome {
            Ok(result) => {
                self.done_jobs.fetch_add(1, Ordering::Relaxed);
                job.set_state(JobState::Done(result));
            }
            Err(msg) if msg == CANCELLED_MARK => {
                self.cancelled_jobs.fetch_add(1, Ordering::Relaxed);
                job.set_state(JobState::Cancelled);
            }
            Err(msg) => {
                self.failed_jobs.fetch_add(1, Ordering::Relaxed);
                job.set_state(JobState::Failed(msg));
            }
        }
    }

    /// The expensive part of a job, on a worker thread.
    fn execute(&self, job: &JobEntry) -> Result<Box<ResultResponse>, String> {
        // Re-check the cache: a duplicate of a design whose first train
        // completed while this job sat in the queue is a hit now.
        if let Some(entry) = self.cache.lookup(&job.key_hex) {
            if entry.verify_design(&job.netlist, &job.names).is_ok()
                && recipe_matches(&entry.cfg, &job.cfg)
            {
                let result = self.serve_hot(&job.key_hex, &entry, &job.cfg, Some(job.id))?;
                return Ok(Box::new(result));
            }
        }
        let progress = JobProgress { job };
        let map_err = |e: muxlink_core::AttackError| match e {
            muxlink_core::AttackError::Cancelled => CANCELLED_MARK.to_owned(),
            other => other.to_string(),
        };
        let trained = AttackSession::new(&job.netlist, &job.names, job.cfg.clone())
            .extract()
            .map_err(map_err)?
            .prepare(&progress)
            .map_err(map_err)?
            .train(&progress)
            .map_err(map_err)?;
        self.trainings.fetch_add(1, Ordering::Relaxed);
        let train_seconds = trained.timings.train.as_secs_f64();
        let trained = Arc::new(trained);
        if let Err(e) = self.cache.insert(&job.key_hex, Arc::clone(&trained)) {
            // A failed disk write degrades persistence, not service.
            eprintln!("[muxlink-serve] cache write failed: {e}");
        }
        let scored = trained.score(&progress).map_err(map_err)?;
        Ok(Box::new(result_from_scored(
            Some(job.id),
            &job.key_hex,
            false,
            &scored,
            job.cfg.th,
            train_seconds,
        )))
    }
}

/// Internal sentinel distinguishing cooperative cancellation from a
/// real failure in the worker's error channel.
const CANCELLED_MARK: &str = "\u{0}cancelled";

/// Terminal-job registry bound (see [`Engine::register_job`]).
const MAX_RETAINED_JOBS: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_locking::{dmux, LockOptions};

    fn locked_bench(seed: u64, gates: usize, key_bits: usize) -> String {
        let design =
            muxlink_benchgen::synth::SynthConfig::new("engine", 12, 5, gates).generate(seed);
        let locked = dmux::lock(&design, &LockOptions::new(key_bits, 3)).unwrap();
        bench_format::write(&locked.netlist).unwrap()
    }

    fn fast_submit(bench: &str) -> SubmitRequest {
        let mut sreq = SubmitRequest::inline(JobKind::Attack, bench);
        // Tiny recipe: keep engine unit tests in the hundreds of ms.
        sreq.hops = Some(1);
        sreq.threads = Some(1);
        sreq
    }

    fn engine_with_workers(workers: usize) -> (Arc<Engine>, Vec<JoinHandle<()>>) {
        let engine = Engine::new(&EngineOptions {
            cache_dir: None,
            cache_entries: 4,
            workers,
        })
        .unwrap();
        let handles = engine.spawn_workers();
        (engine, handles)
    }

    fn drain(engine: &Arc<Engine>, handles: Vec<JoinHandle<()>>) {
        engine.begin_drain();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cold_then_warm_submit_is_a_verified_cache_hit_with_identical_scores() {
        let (engine, handles) = engine_with_workers(1);
        let bench = locked_bench(1, 140, 4);
        let sreq = fast_submit(&bench);
        let cold = engine.run_to_completion(&sreq, None).unwrap();
        assert!(!cold.cache_hit);
        let warm = engine.run_to_completion(&sreq, None).unwrap();
        assert!(warm.cache_hit, "second submit must hit the cache");
        assert_eq!(warm.key, cold.key);
        assert_eq!(warm.key_string, cold.key_string);
        assert_eq!(warm.scores, cold.scores, "bitwise-identical likelihoods");
        assert_eq!(engine.stats().trainings, 1, "one training total");
        drain(&engine, handles);
    }

    #[test]
    fn concurrent_identical_submits_train_at_most_once() {
        let (engine, handles) = engine_with_workers(2);
        let bench = locked_bench(2, 140, 4);
        let sreq = fast_submit(&bench);
        let results: Vec<_> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let sreq = sreq.clone();
                    scope.spawn(move || engine.run_to_completion(&sreq, None).unwrap())
                })
                .collect();
            workers.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(engine.stats().trainings, 1, "single-flight: one train");
        let first = &results[0];
        for r in &results {
            assert_eq!(r.key, first.key);
            assert_eq!(r.key_string, first.key_string);
            assert_eq!(r.scores, first.scores);
        }
        drain(&engine, handles);
    }

    #[test]
    fn score_jobs_never_train_and_sweep_reuses_the_checkpoint() {
        let (engine, handles) = engine_with_workers(1);
        let bench = locked_bench(3, 140, 4);
        // Score before any train: explicit error, nothing queued.
        let miss = engine.run_to_completion(&SubmitRequest::inline(JobKind::Score, &bench), None);
        assert!(miss.unwrap_err().contains("no cached checkpoint"));
        let cold = engine
            .run_to_completion(&fast_submit(&bench), None)
            .unwrap();
        let mut score = SubmitRequest::inline(JobKind::Score, &bench);
        score.th = Some(0.9);
        let hot = engine.run_to_completion(&score, None).unwrap();
        assert!(hot.cache_hit);
        assert_eq!(hot.scores, cold.scores);
        assert_eq!(hot.th, 0.9);
        // Recipe overrides on score jobs are rejected.
        let mut bad = SubmitRequest::inline(JobKind::Score, &bench);
        bad.hops = Some(3);
        assert!(engine
            .run_to_completion(&bad, None)
            .unwrap_err()
            .contains("training recipe"));
        let rows = engine.sweep(&cold.key, &[0.5, 0.9]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(engine.stats().trainings, 1);
        drain(&engine, handles);
    }

    #[test]
    fn cancelled_queued_jobs_resolve_without_running() {
        // No workers started: jobs stay queued until cancelled.
        let engine = Engine::new(&EngineOptions::default()).unwrap();
        let bench = locked_bench(4, 140, 4);
        let SubmitOutcome::Queued { job_id, .. } = engine.submit(&fast_submit(&bench)).unwrap()
        else {
            panic!("empty cache must queue");
        };
        engine.cancel(job_id).unwrap();
        let err = engine.wait_result(job_id).unwrap_err();
        assert!(err.contains("cancelled"), "{err}");
        assert_eq!(engine.status(job_id).unwrap().state, "cancelled");
        assert_eq!(engine.stats().jobs_cancelled, 1);
        // The in-flight slot was released: a resubmit queues fresh.
        assert!(matches!(
            engine.submit(&fast_submit(&bench)).unwrap(),
            SubmitOutcome::Queued {
                coalesced: false,
                ..
            }
        ));
    }

    #[test]
    fn draining_rejects_new_submits() {
        let (engine, handles) = engine_with_workers(1);
        drain(&engine, handles);
        let bench = locked_bench(5, 140, 4);
        assert!(engine
            .submit(&fast_submit(&bench))
            .unwrap_err()
            .contains("shutting down"));
    }
}
