//! The checkpoint cache: fingerprint-keyed storage of [`Trained`]
//! artifacts.
//!
//! Two tiers share one key — the 64-char hex form of
//! [`muxlink_core::DesignFingerprint`]:
//!
//! * an **in-memory LRU** of `Arc<Trained>` (capacity
//!   `--cache-entries`; a fig7-scale checkpoint is a few MB, so the
//!   default of 8 keeps the daemon's footprint modest);
//! * an optional **on-disk store** under `--cache-dir`: one
//!   `<fingerprint-hex>.json` file per design, the same serde format
//!   `muxlink train --save-model` writes, so cached checkpoints are
//!   interchangeable with CLI checkpoints and survive daemon restarts.
//!
//! Memory eviction never deletes the disk copy — a design evicted from
//! memory is a *disk hit* next time, not a retrain. Lookups touch the
//! LRU order; disk loads are promoted into memory.
//!
//! The cache stores whatever it is given under the stated key; **the
//! engine verifies** an entry against the incoming netlist
//! ([`Trained::verify_design`]) before serving it, and calls
//! [`CheckpointCache::reject`] to expel an entry that fails (counted
//! in [`CacheStats::verify_rejections`], after which the submit falls
//! through to a fresh train).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use muxlink_core::Trained;

/// Counter snapshot of cache traffic (reported under `stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Subset of hits loaded from disk.
    pub disk_hits: u64,
    /// Checkpoints inserted.
    pub insertions: u64,
    /// Memory evictions (disk copies survive).
    pub evictions: u64,
    /// Entries expelled because verification failed.
    pub verify_rejections: u64,
}

struct Inner {
    /// Resident checkpoints by fingerprint hex.
    entries: HashMap<String, Arc<Trained>>,
    /// LRU order: front = least recently used.
    order: Vec<String>,
    stats: CacheStats,
}

/// Fingerprint-keyed two-tier checkpoint store. All methods take
/// `&self`; one instance is shared across connection handlers and
/// workers.
pub struct CheckpointCache {
    dir: Option<PathBuf>,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl CheckpointCache {
    /// Creates a cache holding at most `capacity` checkpoints in
    /// memory, optionally backed by `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// [`io::Error`] when `dir` cannot be created.
    pub fn new(dir: Option<PathBuf>, capacity: usize) -> io::Result<Self> {
        if let Some(d) = &dir {
            fs::create_dir_all(d)?;
        }
        Ok(Self {
            dir,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: Vec::new(),
                stats: CacheStats::default(),
            }),
        })
    }

    /// A mutex poisoned by a panicking worker still guards coherent
    /// data (every mutation here is a single logical step), so recover
    /// the guard instead of propagating the poison to every
    /// connection.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are fingerprint hex (validated by the engine), so they
        // are always safe file names; the guard is belt-and-braces
        // against a future caller passing something path-like.
        if !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    fn touch(order: &mut Vec<String>, key: &str) {
        if let Some(pos) = order.iter().position(|k| k == key) {
            let k = order.remove(pos);
            order.push(k);
        } else {
            order.push(key.to_owned());
        }
    }

    /// Looks up a checkpoint: memory first, then the on-disk store
    /// (parsed and promoted into memory). Returns `None` on a miss.
    pub fn lookup(&self, key: &str) -> Option<Arc<Trained>> {
        {
            let mut inner = self.lock();
            if let Some(entry) = inner.entries.get(key).cloned() {
                inner.stats.hits += 1;
                Self::touch(&mut inner.order, key);
                return Some(entry);
            }
        }
        // Disk read happens outside the lock: a multi-MB JSON parse
        // must not stall unrelated lookups.
        let loaded = self
            .disk_path(key)
            .and_then(|p| fs::read_to_string(p).ok())
            .and_then(|text| serde_json::from_str::<Trained>(&text).ok());
        let mut inner = self.lock();
        match loaded {
            Some(trained) => {
                inner.stats.hits += 1;
                inner.stats.disk_hits += 1;
                let arc = Arc::new(trained);
                Self::insert_locked(&mut inner, self.capacity, key, Arc::clone(&arc));
                Some(arc)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    fn insert_locked(inner: &mut Inner, capacity: usize, key: &str, entry: Arc<Trained>) {
        inner.entries.insert(key.to_owned(), entry);
        Self::touch(&mut inner.order, key);
        while inner.entries.len() > capacity {
            let victim = inner.order.remove(0);
            inner.entries.remove(&victim);
            inner.stats.evictions += 1;
        }
    }

    /// Inserts a freshly trained checkpoint under `key` (memory +
    /// disk). A disk-write failure is reported but does not fail the
    /// insert — the memory tier still serves the entry.
    ///
    /// # Errors
    ///
    /// The disk-write failure message, for the caller to log.
    pub fn insert(&self, key: &str, entry: Arc<Trained>) -> Result<(), String> {
        {
            let mut inner = self.lock();
            inner.stats.insertions += 1;
            Self::insert_locked(&mut inner, self.capacity, key, entry.clone());
        }
        if let Some(path) = self.disk_path(key) {
            let json = serde_json::to_string(entry.as_ref())
                .map_err(|e| format!("serialising checkpoint {key}: {e}"))?;
            // Write-then-rename so a crash mid-write never leaves a
            // truncated checkpoint a later lookup would half-parse.
            let tmp = path.with_extension("json.tmp");
            fs::write(&tmp, json).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            fs::rename(&tmp, &path).map_err(|e| format!("renaming {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Expels an entry that failed verification against an incoming
    /// netlist (memory *and* disk — a poisoned artifact must not come
    /// back as a disk hit).
    pub fn reject(&self, key: &str) {
        {
            let mut inner = self.lock();
            inner.stats.verify_rejections += 1;
            inner.entries.remove(key);
            inner.order.retain(|k| k != key);
        }
        if let Some(path) = self.disk_path(key) {
            let _ = fs::remove_file(path);
        }
    }

    /// Number of checkpoints resident in memory.
    #[must_use]
    pub fn memory_len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_core::{key_input_names, AttackSession, MuxLinkConfig, NoProgress};
    use muxlink_locking::{dmux, LockOptions};

    fn tiny_trained(seed: u64) -> (String, Trained) {
        let design = muxlink_benchgen::synth::SynthConfig::new("cache", 12, 5, 120).generate(seed);
        let locked = dmux::lock(&design, &LockOptions::new(4, 3)).unwrap();
        let names = key_input_names(&locked.netlist);
        let mut cfg = MuxLinkConfig::quick();
        cfg.epochs = 1;
        cfg.threads = 1;
        let trained = AttackSession::new(&locked.netlist, &names, cfg)
            .extract()
            .unwrap()
            .prepare(&NoProgress)
            .unwrap()
            .train(&NoProgress)
            .unwrap();
        let key = trained.fingerprint().to_hex();
        (key, trained)
    }

    #[test]
    fn memory_lru_evicts_least_recently_used() {
        let cache = CheckpointCache::new(None, 2).unwrap();
        let (ka, a) = tiny_trained(1);
        let (kb, b) = tiny_trained(2);
        let (kc, c) = tiny_trained(3);
        cache.insert(&ka, Arc::new(a)).unwrap();
        cache.insert(&kb, Arc::new(b)).unwrap();
        assert!(cache.lookup(&ka).is_some(), "touch `a` so `b` is LRU");
        cache.insert(&kc, Arc::new(c)).unwrap();
        assert_eq!(cache.memory_len(), 2);
        assert!(cache.lookup(&kb).is_none(), "b was evicted");
        assert!(cache.lookup(&ka).is_some());
        assert!(cache.lookup(&kc).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn disk_tier_survives_memory_eviction_and_new_instances() {
        let dir = std::env::temp_dir().join(format!("muxlink-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (key, trained) = tiny_trained(4);
        {
            let cache = CheckpointCache::new(Some(dir.clone()), 1).unwrap();
            cache.insert(&key, Arc::new(trained.clone())).unwrap();
            let (k2, t2) = tiny_trained(5);
            cache.insert(&k2, Arc::new(t2)).unwrap(); // evicts `key` from memory
            assert_eq!(cache.memory_len(), 1);
            let back = cache.lookup(&key).expect("disk hit after eviction");
            assert_eq!(back.fingerprint().to_hex(), key);
            assert_eq!(cache.stats().disk_hits, 1);
        }
        // A fresh instance (daemon restart) still sees the artifact.
        let cache = CheckpointCache::new(Some(dir.clone()), 1).unwrap();
        let back = cache.lookup(&key).expect("disk hit across restart");
        assert_eq!(back.report, trained.report);
        // Reject removes both tiers.
        cache.reject(&key);
        assert!(cache.lookup(&key).is_none());
        assert!(!dir.join(format!("{key}.json")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_hex_keys_never_touch_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("muxlink-cache-esc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = CheckpointCache::new(Some(dir.clone()), 1).unwrap();
        assert!(cache.disk_path("../../etc/passwd").is_none());
        assert!(cache.disk_path(&"a".repeat(64)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
