//! A small blocking client for the attack service — the engine behind
//! `muxlink client` and the integration tests.
//!
//! One [`Connection`] maps to one daemon connection; [`Connection::send`]
//! writes a request line, [`Connection::recv`] reads the next response
//! line (streamed [`Response::Event`]s arrive as ordinary responses
//! interleaved before the final one — callers loop until they see a
//! non-event response).

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::proto::{parse_response, render_request, Request, Response};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(io::Error),
    /// The daemon hung up before answering.
    Closed,
    /// The daemon answered something this client cannot parse.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "connection error: {e}"),
            Self::Closed => f.write_str("daemon closed the connection"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One blocking NDJSON connection to a daemon.
pub struct Connection {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Connection {
    /// Connects over the daemon's unix socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket cannot be reached.
    pub fn unix(path: &Path) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(Box::new(reader)),
            writer: Box::new(stream),
        })
    }

    /// Connects over TCP (`host:port`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the address cannot be reached.
    pub fn tcp(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(Box::new(reader)),
            writer: Box::new(stream),
        })
    }

    /// Writes one request line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on a broken connection.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = render_request(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next response line (blocking).
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Protocol`] on an
    /// unparsable line, [`ClientError::Io`] on a broken connection.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            if line.trim().is_empty() {
                continue;
            }
            return parse_response(line.trim_end()).map_err(ClientError::Protocol);
        }
    }

    /// Sends a request and reads responses until the first non-event
    /// one, handing each interim [`Response::Event`] to `on_event`.
    ///
    /// # Errors
    ///
    /// As [`Connection::send`] / [`Connection::recv`].
    pub fn round_trip(
        &mut self,
        request: &Request,
        mut on_event: impl FnMut(&Response),
    ) -> Result<Response, ClientError> {
        self.send(request)?;
        loop {
            let response = self.recv()?;
            if matches!(response, Response::Event(_)) {
                on_event(&response);
                continue;
            }
            return Ok(response);
        }
    }
}
