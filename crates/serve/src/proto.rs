//! The attack-service wire protocol.
//!
//! Transport framing is **newline-delimited JSON**: every request and
//! every response is exactly one JSON object on one line (`\n`
//! terminated, no embedded newlines — the vendored `serde_json`
//! compact writer guarantees that). A connection carries any number of
//! requests; the daemon answers each in order, interleaving streamed
//! [`Response::Event`] lines for jobs submitted with `"stream": true`.
//!
//! Every object carries the protocol version under `"v"`; a missing
//! `"v"` is read as version 1 (so hand-typed `echo`-style requests
//! work), any other version is rejected with [`Response::Error`].
//! Requests are tagged by `"kind"`; unknown optional fields default
//! rather than error, so older clients keep working as fields are
//! added — the enums here are the compatibility surface, which is why
//! their serde is written by hand instead of derived.
//!
//! Fingerprints travel as the 64-char hex form of
//! [`muxlink_core::DesignFingerprint`] under the `"key"` field — the
//! same value that keys the checkpoint cache, so a client can `sweep`
//! any design it has ever submitted by quoting the key back.
//!
//! Score vectors in [`ResultResponse`] are the raw `(l0, l1)`
//! likelihood pairs. JSON `f64` round-trips are lossless in the
//! vendored writer, so "warm response bitwise-identical to cold
//! response" is checkable across the wire.

use serde::{DeError, Deserialize, Serialize, Value};

/// Wire-protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// What a submitted job should do once the design is identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Train (or reuse a cached checkpoint), score and recover the key.
    Attack,
    /// Train and cache the checkpoint; also reports the recovered key
    /// (scoring costs milliseconds once training is paid for).
    Train,
    /// Score an already-cached checkpoint only — never trains; errors
    /// when the design has no cached (or in-flight) checkpoint.
    Score,
}

impl JobKind {
    /// The lower-case wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Attack => "attack",
            Self::Train => "train",
            Self::Score => "score",
        }
    }

    /// Parses the wire name.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted kinds.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "attack" => Ok(Self::Attack),
            "train" => Ok(Self::Train),
            "score" => Ok(Self::Score),
            other => Err(format!(
                "unknown job kind `{other}` (expected attack, train or score)"
            )),
        }
    }
}

/// A `submit` request: attack/train/score one design.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// What to do with the design.
    pub job: JobKind,
    /// Inline `.bench` netlist text (takes precedence over
    /// [`Self::netlist_path`]).
    pub netlist: Option<String>,
    /// Daemon-side path to a `.bench` file.
    pub netlist_path: Option<String>,
    /// Use the paper training profile instead of `quick`.
    pub paper: bool,
    /// Decision threshold override (`cfg.th`).
    pub th: Option<f64>,
    /// Enclosing-subgraph hops override (`cfg.h`) — training recipe.
    pub hops: Option<usize>,
    /// RNG seed override — training recipe.
    pub seed: Option<u64>,
    /// Worker-thread override (results are thread-count invariant).
    pub threads: Option<usize>,
    /// Minibatch-size override — training recipe.
    pub batch_size: Option<usize>,
    /// Block until the job finishes and reply with the full result
    /// (default). With `false` the daemon replies `accepted`
    /// immediately; poll `status` / fetch `result` later.
    pub wait: bool,
    /// Stream per-epoch [`Response::Event`] lines while waiting.
    pub stream: bool,
}

impl SubmitRequest {
    /// A waiting, non-streaming submit of inline netlist text.
    #[must_use]
    pub fn inline(job: JobKind, bench_text: &str) -> Self {
        Self {
            job,
            netlist: Some(bench_text.to_owned()),
            netlist_path: None,
            paper: false,
            th: None,
            hops: None,
            seed: None,
            threads: None,
            batch_size: None,
            wait: true,
            stream: false,
        }
    }
}

/// One client request (one JSON line).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job (see [`SubmitRequest`]).
    Submit(SubmitRequest),
    /// Non-blocking job state poll.
    Status {
        /// The job to poll.
        job_id: u64,
    },
    /// Block until the job is terminal, then return its result.
    Result {
        /// The job to wait for.
        job_id: u64,
    },
    /// Re-threshold a cached checkpoint at several `th` values —
    /// milliseconds per row, never trains.
    Sweep {
        /// Fingerprint hex of a design the daemon has trained.
        key: String,
        /// Thresholds to recover the key at.
        thresholds: Vec<f64>,
    },
    /// Cooperatively cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Daemon counters (cache hits, jobs, uptime, …).
    Stats,
    /// Drain all queued and running jobs, then exit.
    Shutdown,
}

/// Full outcome of a finished job (or a cache hit served inline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultResponse {
    /// Job id, when a queued job produced this result (absent for
    /// results served straight from the cache).
    pub job_id: Option<u64>,
    /// Design fingerprint hex — the checkpoint-cache key.
    pub key: String,
    /// Whether the checkpoint came from the cache (no training ran).
    pub cache_hit: bool,
    /// Whether this submit attached to an identical in-flight job
    /// (single-flight coalescing) instead of training again.
    pub coalesced: bool,
    /// The recovered key, one char per bit (`0`/`1`/`X`).
    pub key_string: String,
    /// Number of decided (non-`X`) bits.
    pub decided: usize,
    /// Total key bits.
    pub key_len: usize,
    /// Raw per-MUX likelihood pairs `(l0, l1)` — bitwise-comparable
    /// across cold and warm responses.
    pub scores: Vec<(f64, f64)>,
    /// Decision threshold the key was recovered at.
    pub th: f64,
    /// Best validation accuracy of the checkpoint's training run.
    pub val_accuracy: f64,
    /// Epochs the checkpoint trained for.
    pub epochs: usize,
    /// Wall-clock seconds of the training stage (0 on cache hits).
    pub train_seconds: f64,
    /// Wall-clock seconds of the scoring stage.
    pub score_seconds: f64,
}

/// One row of a threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The threshold.
    pub th: f64,
    /// The key recovered at that threshold (`0`/`1`/`X` per bit).
    pub key_string: String,
    /// Decided (non-`X`) bits at that threshold.
    pub decided: usize,
}

/// Daemon counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Protocol version the daemon speaks.
    pub protocol: u32,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Jobs ever submitted (including coalesced attaches).
    pub jobs_submitted: u64,
    /// Jobs currently queued.
    pub jobs_queued: usize,
    /// Jobs currently running.
    pub jobs_running: usize,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs that failed.
    pub jobs_failed: u64,
    /// Jobs cancelled before or during execution.
    pub jobs_cancelled: u64,
    /// Training runs actually executed (cache hits and coalesced
    /// submits don't count — this is the single-flight metric).
    pub trainings: u64,
    /// Submits served by attaching to an in-flight identical job.
    pub coalesced_submits: u64,
    /// Checkpoints resident in memory.
    pub cache_memory_entries: usize,
    /// Cache lookups answered from memory or disk.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Subset of hits that had to be loaded from disk.
    pub cache_disk_hits: u64,
    /// Checkpoints inserted.
    pub cache_insertions: u64,
    /// Checkpoints evicted from memory by the LRU policy.
    pub cache_evictions: u64,
    /// Cache entries rejected by fingerprint/structure verification.
    pub cache_verify_rejections: u64,
    /// Seconds since the daemon started.
    pub uptime_seconds: f64,
}

/// A streamed progress event (only on `"stream": true` submits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventMsg {
    /// `"epoch"` or `"stage"`.
    pub event: String,
    /// The job the event belongs to.
    pub job_id: u64,
    /// 1-based epoch number (epoch events).
    pub epoch: Option<usize>,
    /// Mean training cross-entropy (epoch events).
    pub train_loss: Option<f64>,
    /// Validation accuracy (epoch events).
    pub val_accuracy: Option<f64>,
    /// Stage name (stage events).
    pub stage: Option<String>,
    /// Stage wall-clock seconds (stage-finished events).
    pub seconds: Option<f64>,
}

/// Non-blocking job state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// The polled job.
    pub job_id: u64,
    /// `queued`, `running`, `done`, `failed` or `cancelled`.
    pub state: String,
    /// Design fingerprint hex.
    pub key: String,
    /// Epochs finished so far.
    pub epochs_done: usize,
    /// Failure message when `state` is `failed`.
    pub error: Option<String>,
}

/// One daemon response (one JSON line).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A non-waiting submit was queued (or attached to an in-flight
    /// job).
    Accepted {
        /// The job to poll / wait on.
        job_id: u64,
        /// Design fingerprint hex.
        key: String,
        /// Whether the submit attached to an in-flight identical job.
        coalesced: bool,
    },
    /// Job state (answer to `status`).
    Status(StatusResponse),
    /// Full job outcome (answer to waiting `submit` and `result`).
    Result(ResultResponse),
    /// Threshold sweep rows (answer to `sweep`).
    Sweep {
        /// Design fingerprint hex.
        key: String,
        /// Whether the checkpoint came from the cache (always true —
        /// sweeps never train; kept explicit for client symmetry).
        cache_hit: bool,
        /// One row per requested threshold.
        rows: Vec<SweepRow>,
    },
    /// A cancel was delivered (the job may take a batch boundary to
    /// observe it).
    Cancelled {
        /// The cancelled job.
        job_id: u64,
    },
    /// Daemon counters (answer to `stats`).
    Stats(StatsResponse),
    /// Streamed progress (only on `"stream": true` submits).
    Event(EventMsg),
    /// Per-request failure. The connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Acknowledges `shutdown`; the daemon drains and exits.
    Bye,
}

// ---------------------------------------------------------------------
// Tolerant field accessors (hand-written requests only — responses are
// always emitted complete by the daemon, so their payload structs use
// the derive).
// ---------------------------------------------------------------------

fn field<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match serde::map_get(v, key) {
        Ok(Value::Null) => None,
        Ok(val) => Some(val),
        Err(_) => None,
    }
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match field(v, key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!("field `{key}` must be a string, found {other:?}")),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<Option<bool>, String> {
    match field(v, key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!("field `{key}` must be a boolean, found {other:?}")),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match field(v, key) {
        None => Ok(None),
        Some(Value::Int(i)) => u64::try_from(*i)
            .map(Some)
            .map_err(|_| format!("field `{key}` must be a non-negative integer")),
        Some(other) => Err(format!("field `{key}` must be an integer, found {other:?}")),
    }
}

fn opt_usize(v: &Value, key: &str) -> Result<Option<usize>, String> {
    Ok(opt_u64(v, key)?.map(|n| n as usize))
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match field(v, key) {
        None => Ok(None),
        Some(Value::Float(f)) => Ok(Some(*f)),
        // `0` parses as an integer; thresholds may legitimately be
        // written without a decimal point.
        Some(Value::Int(i)) => Ok(Some(*i as f64)),
        Some(other) => Err(format!("field `{key}` must be a number, found {other:?}")),
    }
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    opt_u64(v, key)?.ok_or_else(|| format!("missing field `{key}`"))
}

fn need_str(v: &Value, key: &str) -> Result<String, String> {
    opt_str(v, key)?.ok_or_else(|| format!("missing field `{key}`"))
}

fn tagged(kind: &str, mut rest: Vec<(String, Value)>) -> Value {
    let mut entries = vec![
        ("kind".to_owned(), Value::Str(kind.to_owned())),
        ("v".to_owned(), Value::Int(i64::from(PROTOCOL_VERSION))),
    ];
    entries.append(&mut rest);
    Value::Map(entries)
}

/// Wraps a derived payload struct's map under a `kind` tag.
fn tagged_struct<T: Serialize>(kind: &str, payload: &T) -> Value {
    match payload.to_value() {
        Value::Map(entries) => tagged(kind, entries),
        other => tagged(kind, vec![("value".to_owned(), other)]),
    }
}

fn check_version(v: &Value) -> Result<(), String> {
    match field(v, "v") {
        None => Ok(()),
        Some(Value::Int(i)) if *i == i64::from(PROTOCOL_VERSION) => Ok(()),
        Some(other) => Err(format!(
            "unsupported protocol version {other:?} (this daemon speaks v{PROTOCOL_VERSION})"
        )),
    }
}

// ---------------------------------------------------------------------
// Request serde
// ---------------------------------------------------------------------

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Self::Submit(s) => {
                let mut m: Vec<(String, Value)> =
                    vec![("job".to_owned(), Value::Str(s.job.as_str().to_owned()))];
                let mut put = |k: &str, v: Value| m.push((k.to_owned(), v));
                if let Some(t) = &s.netlist {
                    put("netlist", Value::Str(t.clone()));
                }
                if let Some(p) = &s.netlist_path {
                    put("netlist_path", Value::Str(p.clone()));
                }
                if s.paper {
                    put("paper", Value::Bool(true));
                }
                if let Some(x) = s.th {
                    put("th", Value::Float(x));
                }
                if let Some(x) = s.hops {
                    put("hops", Value::Int(x as i64));
                }
                if let Some(x) = s.seed {
                    put("seed", Value::Int(x as i64));
                }
                if let Some(x) = s.threads {
                    put("threads", Value::Int(x as i64));
                }
                if let Some(x) = s.batch_size {
                    put("batch_size", Value::Int(x as i64));
                }
                put("wait", Value::Bool(s.wait));
                put("stream", Value::Bool(s.stream));
                tagged("submit", m)
            }
            Self::Status { job_id } => tagged(
                "status",
                vec![("job_id".to_owned(), Value::Int(*job_id as i64))],
            ),
            Self::Result { job_id } => tagged(
                "result",
                vec![("job_id".to_owned(), Value::Int(*job_id as i64))],
            ),
            Self::Sweep { key, thresholds } => tagged(
                "sweep",
                vec![
                    ("key".to_owned(), Value::Str(key.clone())),
                    (
                        "thresholds".to_owned(),
                        Value::Seq(thresholds.iter().map(|t| Value::Float(*t)).collect()),
                    ),
                ],
            ),
            Self::Cancel { job_id } => tagged(
                "cancel",
                vec![("job_id".to_owned(), Value::Int(*job_id as i64))],
            ),
            Self::Stats => tagged("stats", vec![]),
            Self::Shutdown => tagged("shutdown", vec![]),
        }
    }
}

impl Request {
    /// Reconstructs a request from a decoded JSON value, tolerating
    /// missing optional fields (they take their defaults).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed or missing field —
    /// the daemon reflects it back as [`Response::Error`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        check_version(v)?;
        let kind = need_str(v, "kind")?;
        match kind.as_str() {
            "submit" => {
                let job = match opt_str(v, "job")? {
                    Some(name) => JobKind::parse(&name)?,
                    None => JobKind::Attack,
                };
                let netlist = opt_str(v, "netlist")?;
                let netlist_path = opt_str(v, "netlist_path")?;
                if netlist.is_none() && netlist_path.is_none() {
                    return Err("submit needs `netlist` (inline text) or `netlist_path`".into());
                }
                Ok(Self::Submit(SubmitRequest {
                    job,
                    netlist,
                    netlist_path,
                    paper: opt_bool(v, "paper")?.unwrap_or(false),
                    th: opt_f64(v, "th")?,
                    hops: opt_usize(v, "hops")?,
                    seed: opt_u64(v, "seed")?,
                    threads: opt_usize(v, "threads")?,
                    batch_size: opt_usize(v, "batch_size")?,
                    wait: opt_bool(v, "wait")?.unwrap_or(true),
                    stream: opt_bool(v, "stream")?.unwrap_or(false),
                }))
            }
            "status" => Ok(Self::Status {
                job_id: need_u64(v, "job_id")?,
            }),
            "result" => Ok(Self::Result {
                job_id: need_u64(v, "job_id")?,
            }),
            "sweep" => {
                let key = need_str(v, "key")?;
                let thresholds = match field(v, "thresholds") {
                    None => return Err("sweep needs a `thresholds` array".into()),
                    Some(Value::Seq(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            match item {
                                Value::Float(f) => out.push(*f),
                                Value::Int(i) => out.push(*i as f64),
                                other => {
                                    return Err(format!(
                                        "`thresholds` must contain numbers, found {other:?}"
                                    ));
                                }
                            }
                        }
                        out
                    }
                    Some(other) => {
                        return Err(format!("`thresholds` must be an array, found {other:?}"));
                    }
                };
                if thresholds.is_empty() {
                    return Err("sweep needs at least one threshold".into());
                }
                Ok(Self::Sweep { key, thresholds })
            }
            "cancel" => Ok(Self::Cancel {
                job_id: need_u64(v, "job_id")?,
            }),
            "stats" => Ok(Self::Stats),
            "shutdown" => Ok(Self::Shutdown),
            other => Err(format!("unknown request kind `{other}`")),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Self::from_json_value(v).map_err(DeError)
    }
}

// ---------------------------------------------------------------------
// Response serde
// ---------------------------------------------------------------------

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Self::Accepted {
                job_id,
                key,
                coalesced,
            } => tagged(
                "accepted",
                vec![
                    ("job_id".to_owned(), Value::Int(*job_id as i64)),
                    ("key".to_owned(), Value::Str(key.clone())),
                    ("coalesced".to_owned(), Value::Bool(*coalesced)),
                ],
            ),
            Self::Status(s) => tagged_struct("status", s),
            Self::Result(r) => tagged_struct("result", r),
            Self::Sweep {
                key,
                cache_hit,
                rows,
            } => tagged(
                "sweep",
                vec![
                    ("key".to_owned(), Value::Str(key.clone())),
                    ("cache_hit".to_owned(), Value::Bool(*cache_hit)),
                    (
                        "rows".to_owned(),
                        Value::Seq(rows.iter().map(Serialize::to_value).collect()),
                    ),
                ],
            ),
            Self::Cancelled { job_id } => tagged(
                "cancelled",
                vec![("job_id".to_owned(), Value::Int(*job_id as i64))],
            ),
            Self::Stats(s) => tagged_struct("stats", s),
            Self::Event(e) => tagged_struct("event", e),
            Self::Error { message } => tagged(
                "error",
                vec![("message".to_owned(), Value::Str(message.clone()))],
            ),
            Self::Bye => tagged("bye", vec![]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        check_version(v).map_err(DeError)?;
        let kind = need_str(v, "kind").map_err(DeError)?;
        match kind.as_str() {
            "accepted" => Ok(Self::Accepted {
                job_id: need_u64(v, "job_id").map_err(DeError)?,
                key: need_str(v, "key").map_err(DeError)?,
                coalesced: opt_bool(v, "coalesced").map_err(DeError)?.unwrap_or(false),
            }),
            "status" => Ok(Self::Status(StatusResponse::from_value(v)?)),
            "result" => Ok(Self::Result(ResultResponse::from_value(v)?)),
            "sweep" => {
                let rows = match field(v, "rows") {
                    Some(rows) => Vec::<SweepRow>::from_value(rows)?,
                    None => Vec::new(),
                };
                Ok(Self::Sweep {
                    key: need_str(v, "key").map_err(DeError)?,
                    cache_hit: opt_bool(v, "cache_hit").map_err(DeError)?.unwrap_or(true),
                    rows,
                })
            }
            "cancelled" => Ok(Self::Cancelled {
                job_id: need_u64(v, "job_id").map_err(DeError)?,
            }),
            "stats" => Ok(Self::Stats(StatsResponse::from_value(v)?)),
            "event" => Ok(Self::Event(EventMsg::from_value(v)?)),
            "error" => Ok(Self::Error {
                message: need_str(v, "message").map_err(DeError)?,
            }),
            "bye" => Ok(Self::Bye),
            other => Err(DeError(format!("unknown response kind `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------
// Line codecs
// ---------------------------------------------------------------------

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, a wrong version or a
/// bad/missing field — the daemon reflects it back as
/// [`Response::Error`] and keeps the connection alive.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str::<Request>(line).map_err(|e| e.to_string())
}

/// Renders one request as a single JSON line (no trailing newline).
#[must_use]
pub fn render_request(req: &Request) -> String {
    serde_json::to_string(req).expect("requests always serialise")
}

/// Parses one response line.
///
/// # Errors
///
/// A human-readable message for malformed JSON or an unknown kind.
pub fn parse_response(line: &str) -> Result<Response, String> {
    serde_json::from_str::<Response>(line).map_err(|e| e.to_string())
}

/// Renders one response as a single JSON line (no trailing newline).
#[must_use]
pub fn render_response(resp: &Response) -> String {
    serde_json::to_string(resp).expect("responses always serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let line = render_request(req);
        assert!(!line.contains('\n'), "one request = one line");
        let back = parse_request(&line).unwrap();
        assert_eq!(&back, req);
    }

    fn round_trip_response(resp: &Response) {
        let line = render_response(resp);
        assert!(!line.contains('\n'), "one response = one line");
        let back = parse_response(&line).unwrap();
        assert_eq!(&back, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Submit(SubmitRequest {
            job: JobKind::Train,
            netlist: Some("INPUT(a)\n".to_owned()),
            netlist_path: None,
            paper: true,
            th: Some(0.75),
            hops: Some(2),
            seed: Some(7),
            threads: Some(1),
            batch_size: Some(16),
            wait: false,
            stream: true,
        }));
        round_trip_request(&Request::Status { job_id: 3 });
        round_trip_request(&Request::Result { job_id: 4 });
        round_trip_request(&Request::Sweep {
            key: "ab".repeat(32),
            thresholds: vec![0.5, 0.75],
        });
        round_trip_request(&Request::Cancel { job_id: 9 });
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Accepted {
            job_id: 1,
            key: "cd".repeat(32),
            coalesced: true,
        });
        round_trip_response(&Response::Status(StatusResponse {
            job_id: 1,
            state: "running".to_owned(),
            key: "cd".repeat(32),
            epochs_done: 12,
            error: None,
        }));
        round_trip_response(&Response::Result(ResultResponse {
            job_id: Some(1),
            key: "cd".repeat(32),
            cache_hit: true,
            coalesced: false,
            key_string: "01X1".to_owned(),
            decided: 3,
            key_len: 4,
            scores: vec![(0.25, 0.75), (0.5, 0.5)],
            th: 0.6,
            val_accuracy: 0.93,
            epochs: 20,
            train_seconds: 0.0,
            score_seconds: 0.004,
        }));
        round_trip_response(&Response::Sweep {
            key: "cd".repeat(32),
            cache_hit: true,
            rows: vec![SweepRow {
                th: 0.5,
                key_string: "01".to_owned(),
                decided: 2,
            }],
        });
        round_trip_response(&Response::Cancelled { job_id: 8 });
        round_trip_response(&Response::Event(EventMsg {
            event: "epoch".to_owned(),
            job_id: 1,
            epoch: Some(3),
            train_loss: Some(0.41),
            val_accuracy: Some(0.88),
            stage: None,
            seconds: None,
        }));
        round_trip_response(&Response::Error {
            message: "nope".to_owned(),
        });
        round_trip_response(&Response::Bye);
    }

    #[test]
    fn hand_typed_submit_defaults_are_tolerated() {
        // The shape a human types into `echo | nc`: no version, no
        // optional fields.
        let req = parse_request(r#"{"kind":"submit","netlist":"INPUT(a)"}"#).unwrap();
        match req {
            Request::Submit(s) => {
                assert_eq!(s.job, JobKind::Attack);
                assert!(s.wait, "wait defaults on");
                assert!(!s.stream);
                assert!(!s.paper);
                assert_eq!(s.th, None);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        // Integer thresholds coerce to floats.
        let req = parse_request(r#"{"kind":"sweep","key":"k","thresholds":[1,0.75]}"#).unwrap();
        assert_eq!(
            req,
            Request::Sweep {
                key: "k".to_owned(),
                thresholds: vec![1.0, 0.75],
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"kind":"submit"}"#)
            .unwrap_err()
            .contains("netlist"));
        assert!(parse_request(r#"{"kind":"warp"}"#)
            .unwrap_err()
            .contains("warp"));
        assert!(parse_request(r#"{"kind":"status"}"#)
            .unwrap_err()
            .contains("job_id"));
        assert!(parse_request(r#"{"kind":"stats","v":2}"#)
            .unwrap_err()
            .contains("version"));
        assert!(
            parse_request(r#"{"kind":"submit","netlist":"x","job":"mine"}"#)
                .unwrap_err()
                .contains("mine")
        );
    }
}
