//! The daemon's transport layer: unix-socket (and optional TCP) accept
//! loops, per-connection request handling, and the graceful-shutdown
//! state machine.
//!
//! ## Lifecycle
//!
//! ```text
//! bind (stale-socket cleanup) → accept loop ⇄ connection handlers
//!        │                                        │ shutdown request
//!        └── self-connect wake ◀── begin_drain ◀──┘
//! accept loops exit → workers drain queued+running jobs → join → exit
//! ```
//!
//! A *stale* socket file (left by a killed daemon) is detected by
//! probing it with a connect: refusal means no listener is alive, so
//! the file is removed and the bind retried. A *live* socket refuses to
//! start a second daemon.
//!
//! ## Error isolation
//!
//! Each connection runs on its own thread; a malformed request gets an
//! `error` response and the connection keeps serving; a client that
//! disconnects mid-stream just drops its subscription — the job it was
//! watching runs to completion and stays fetchable via `result`.
//! Connection threads are detached: a hung client can never block
//! shutdown (its submits fail once draining starts, and the process
//! exits after the workers join).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;

use crate::engine::{Engine, EngineOptions, SubmitOutcome};
use crate::proto::{parse_request, render_response, Request, Response};

/// Daemon configuration (the `muxlink serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-socket path to listen on.
    pub socket: PathBuf,
    /// Optional additional TCP listen address (`host:port`).
    pub tcp: Option<String>,
    /// On-disk checkpoint store (`None` = memory-only cache).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads.
    pub workers: usize,
    /// In-memory checkpoint LRU capacity.
    pub cache_entries: usize,
}

/// What the daemon did before exiting (returned by [`serve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs completed successfully over the daemon's lifetime.
    pub jobs_done: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Training runs executed.
    pub trainings: u64,
    /// Cache hits served.
    pub cache_hits: u64,
}

struct Shared {
    engine: Arc<Engine>,
    socket: PathBuf,
    tcp: Option<String>,
}

/// Binds the unix socket, reclaiming a stale socket file when no
/// daemon is listening behind it.
fn bind_unix(path: &PathBuf) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            match UnixStream::connect(path) {
                // Someone answered: a daemon is alive on this socket.
                Ok(_) => Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on {}", path.display()),
                )),
                // Nobody home: stale file from a killed daemon.
                Err(_) => {
                    std::fs::remove_file(path)?;
                    UnixListener::bind(path)
                }
            }
        }
        Err(e) => Err(e),
    }
}

/// Runs the daemon until a `shutdown` request drains it.
///
/// # Errors
///
/// [`io::Error`] when a listener cannot be bound or the cache
/// directory cannot be created.
pub fn serve(opts: &ServeOptions) -> io::Result<ServeSummary> {
    let engine = Engine::new(&EngineOptions {
        cache_dir: opts.cache_dir.clone(),
        cache_entries: opts.cache_entries,
        workers: opts.workers,
    })?;
    // Bind before spawning anything: a failed bind must not leave
    // worker threads behind.
    let unix_listener = bind_unix(&opts.socket)?;
    let tcp_listener = match &opts.tcp {
        Some(addr) => Some(TcpListener::bind(addr)?),
        None => None,
    };
    let workers = engine.spawn_workers();
    let shared = Arc::new(Shared {
        engine: Arc::clone(&engine),
        socket: opts.socket.clone(),
        tcp: opts.tcp.clone(),
    });

    let tcp_handle = tcp_listener.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_tcp(&listener, &shared))
    });

    accept_unix(&unix_listener, &shared);
    // Drain: the accept loops have exited; finish every queued and
    // running job, then stop the workers.
    for h in workers {
        let _ = h.join();
    }
    if let Some(h) = tcp_handle {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(&opts.socket);
    let stats = engine.stats();
    Ok(ServeSummary {
        jobs_done: stats.jobs_done,
        jobs_failed: stats.jobs_failed,
        jobs_cancelled: stats.jobs_cancelled,
        trainings: stats.trainings,
        cache_hits: stats.cache_hits,
    })
}

fn accept_unix(listener: &UnixListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.engine.is_draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            if let Ok(reader) = stream.try_clone() {
                handle_connection(&shared, BufReader::new(reader), stream);
            }
        });
    }
}

fn accept_tcp(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.engine.is_draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            if let Ok(reader) = stream.try_clone() {
                handle_connection(&shared, BufReader::new(reader), stream);
            }
        });
    }
}

/// Unblocks the accept loops after `begin_drain` by poking the
/// listeners with throwaway connections.
fn wake_listeners(shared: &Shared) {
    let _ = UnixStream::connect(&shared.socket);
    if let Some(addr) = &shared.tcp {
        let _ = TcpStream::connect(addr);
    }
}

fn write_line<W: Write>(writer: &mut W, resp: &Response) -> io::Result<()> {
    let mut line = render_response(resp);
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Serves one connection: request per line, response(s) per request.
/// Returning ends the connection; the daemon keeps running.
fn handle_connection<R: BufRead, W: Write>(shared: &Arc<Shared>, reader: R, mut writer: W) {
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(req) => req,
            Err(message) => {
                // Malformed input answers with `error`; the connection
                // stays usable.
                if write_line(&mut writer, &Response::Error { message }).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = dispatch(shared, request, &mut writer);
        if write_line(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            shared.engine.begin_drain();
            wake_listeners(shared);
            return;
        }
    }
}

/// Computes the final response for one request, streaming any interim
/// event lines straight to `writer`.
fn dispatch<W: Write>(shared: &Arc<Shared>, request: Request, writer: &mut W) -> Response {
    let engine = &shared.engine;
    let fail = |message: String| Response::Error { message };
    match request {
        Request::Submit(sreq) => {
            if sreq.wait {
                let result = if sreq.stream {
                    // Forward events as they happen; a client that hung
                    // up stops receiving but never stops the job.
                    let mut client_gone = false;
                    let mut forward = |line: String| {
                        if !client_gone {
                            let mut line = line;
                            line.push('\n');
                            if writer
                                .write_all(line.as_bytes())
                                .and_then(|()| writer.flush())
                                .is_err()
                            {
                                client_gone = true;
                            }
                        }
                    };
                    engine.run_to_completion(&sreq, Some(&mut forward))
                } else {
                    engine.run_to_completion(&sreq, None)
                };
                match result {
                    Ok(r) => Response::Result(r),
                    Err(message) => fail(message),
                }
            } else {
                match engine.submit(&sreq) {
                    Ok(SubmitOutcome::Ready(result)) => Response::Result(*result),
                    Ok(SubmitOutcome::Queued {
                        job_id,
                        key,
                        coalesced,
                    }) => Response::Accepted {
                        job_id,
                        key,
                        coalesced,
                    },
                    Err(message) => fail(message),
                }
            }
        }
        Request::Status { job_id } => match engine.status(job_id) {
            Ok(status) => Response::Status(status),
            Err(message) => fail(message),
        },
        Request::Result { job_id } => match engine.wait_result(job_id) {
            Ok(result) => Response::Result(result),
            Err(message) => fail(message),
        },
        Request::Sweep { key, thresholds } => match engine.sweep(&key, &thresholds) {
            Ok(rows) => Response::Sweep {
                key,
                cache_hit: true,
                rows,
            },
            Err(message) => fail(message),
        },
        Request::Cancel { job_id } => match engine.cancel(job_id) {
            Ok(()) => Response::Cancelled { job_id },
            Err(message) => fail(message),
        },
        Request::Stats => Response::Stats(engine.stats()),
        Request::Shutdown => Response::Bye,
    }
}
