//! # muxlink-serve
//!
//! The attack **service**: a long-running daemon that turns the
//! 13-second MuxLink attack into a milliseconds-latency cache hit for
//! any design it has trained before.
//!
//! Every BENCH record since PR 2 says training is the whole attack
//! (fig7: ~13 s train, ≤10 ms for extraction, scoring and key
//! recovery), and [`muxlink_core::Trained`] is a reloadable checkpoint
//! that re-scores and threshold-sweeps in milliseconds. The daemon
//! draws the obvious conclusion: **train once per design, serve every
//! subsequent query hot.**
//!
//! Architecture (one module per concern):
//!
//! * [`proto`] — the versioned newline-delimited-JSON wire protocol
//!   (requests, responses, streamed progress events);
//! * [`cache`] — the checkpoint cache: an in-memory LRU of
//!   [`muxlink_core::Trained`] artifacts over an optional on-disk
//!   store, keyed by [`muxlink_core::DesignFingerprint`] hex;
//! * [`engine`] — the job queue, worker pool, single-flight
//!   coalescing and cooperative cancellation (no sockets — directly
//!   testable in-process);
//! * [`server`] — the unix-socket (and optional TCP) accept loop,
//!   per-connection request handling and graceful drain-on-shutdown;
//! * [`client`] — a small blocking client used by `muxlink client`
//!   and the integration tests.
//!
//! Transport is `std::os::unix::net` / `std::net` only — the daemon
//! adds no dependencies beyond the workspace's vendored serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod proto;
pub mod server;

pub use cache::{CacheStats, CheckpointCache};
pub use client::{ClientError, Connection};
pub use engine::{Engine, EngineOptions, SubmitOutcome};
pub use proto::{
    parse_request, parse_response, render_request, render_response, EventMsg, JobKind, Request,
    Response, ResultResponse, StatsResponse, SubmitRequest, SweepRow, PROTOCOL_VERSION,
};
pub use server::{serve, ServeOptions, ServeSummary};
