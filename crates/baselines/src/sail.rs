//! SAIL-lite: a rule-based stand-in for the SAIL family of structural ML
//! attacks on XOR/XNOR locking (Chakraborty et al., IEEE TIFS 2021).
//!
//! SAIL learns the mapping from local locking-induced structure back to
//! the key. Without re-synthesis the mapping is trivial — an XOR key gate
//! means key 0, an XNOR means key 1 — and that is all this lite version
//! encodes, plus the one contextual refinement needed to reproduce the
//! D-MUX paper's **ANT** result for TRLL:
//!
//! * On an **AND netlist test** design every inverter is known to be
//!   locking-introduced (the original has none), so a key gate feeding a
//!   fresh inverter must be TRLL's mode C, flipping the type↔key mapping.
//! * On ordinary (RNT) designs that context is ambiguous and the naive
//!   mapping collapses to a coin flip on TRLL — the learning-resilience
//!   TRLL claims, and the reason MuxLink's authors focus on MUX schemes.
//!
//! MUX-locked designs contain no XOR/XNOR key gates at all, so SAIL-lite
//! abstains on every bit (the "no key leakage" property of §I-A).

use muxlink_locking::KeyValue;
use muxlink_netlist::{GateType, Netlist, NetlistError};

/// Runs SAIL-lite; returns one [`KeyValue`] per entry of `key_inputs`.
///
/// # Errors
///
/// [`NetlistError::UnknownNet`] when a key input does not exist.
pub fn sail_lite_attack(
    locked: &Netlist,
    key_inputs: &[String],
) -> Result<Vec<KeyValue>, NetlistError> {
    // Key gates: XOR/XNOR gates reading a key net.
    let mut key_nets = Vec::with_capacity(key_inputs.len());
    for name in key_inputs {
        key_nets.push(
            locked
                .find_net(name)
                .ok_or_else(|| NetlistError::UnknownNet(name.clone()))?,
        );
    }
    let fanout = locked.fanout_map();

    // ANT hypothesis: every inverter sits directly behind a key gate
    // (hence is locking-introduced). A design with any "free" inverter is
    // treated as an ordinary RNT design.
    let is_ant = locked.gates().all(|(_, g)| {
        if g.ty() != GateType::Not {
            return true;
        }
        let src = g.inputs()[0];
        match locked.net(src).driver() {
            Some(d) => {
                let dg = locked.gate(d);
                matches!(dg.ty(), GateType::Xor | GateType::Xnor)
                    && dg.inputs().iter().any(|i| key_nets.contains(i))
            }
            None => false,
        }
    });

    let mut out = Vec::with_capacity(key_inputs.len());
    for key_net in key_nets {
        let mut decision = KeyValue::X;
        for (gid, gate) in locked.gates() {
            if !gate.inputs().contains(&key_net) {
                continue;
            }
            let naive = match gate.ty() {
                GateType::Xor => KeyValue::Zero,
                GateType::Xnor => KeyValue::One,
                _ => continue, // MUX select etc. — not SAIL's domain
            };
            let feeds_inverter = fanout[gate.output().index()]
                .iter()
                .any(|&s| locked.gate(s).ty() == GateType::Not);
            decision = if is_ant && feeds_inverter {
                // TRLL mode C identified: the pair inverts, flip the map.
                flip(naive)
            } else {
                naive
            };
            let _ = gid;
            break;
        }
        out.push(decision);
    }
    Ok(out)
}

fn flip(v: KeyValue) -> KeyValue {
    match v {
        KeyValue::Zero => KeyValue::One,
        KeyValue::One => KeyValue::Zero,
        KeyValue::X => KeyValue::X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::ant_rnt::ant_netlist;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, trll, xor, LockOptions};

    fn kpa(guess: &[KeyValue], key: &muxlink_locking::Key) -> (usize, usize) {
        let decided: Vec<_> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided.iter().filter(|(i, b)| *b == key.bit(*i)).count();
        (correct, decided.len())
    }

    #[test]
    fn breaks_plain_xor_locking_completely() {
        let n = SynthConfig::new("m", 12, 6, 200).generate(1);
        let locked = xor::lock(&n, &LockOptions::new(16, 2)).unwrap();
        let guess = sail_lite_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        let (correct, decided) = kpa(&guess, &locked.key);
        assert_eq!(decided, 16);
        assert_eq!(correct, 16, "unsynthesised XOR locking leaks every bit");
    }

    #[test]
    fn coin_flip_on_trll_rnt() {
        let n = SynthConfig::new("m", 16, 8, 400).generate(3);
        let locked = trll::lock(&n, &LockOptions::new(48, 5)).unwrap();
        let guess = sail_lite_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        let (correct, decided) = kpa(&guess, &locked.key);
        assert!(decided >= 40);
        assert!(
            correct * 10 >= decided * 2 && correct * 10 <= decided * 8,
            "TRLL on RNT should reduce SAIL to a coin flip: {correct}/{decided}"
        );
    }

    #[test]
    fn recovers_trll_on_ant() {
        // The D-MUX paper's point: TRLL fails the AND netlist test.
        let ant = ant_netlist(16, 8, 256, 7);
        let locked = trll::lock(&ant, &LockOptions::new(24, 9)).unwrap();
        let guess = sail_lite_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        let (correct, decided) = kpa(&guess, &locked.key);
        assert_eq!(decided, 24);
        assert!(
            correct * 10 >= decided * 9,
            "TRLL-on-ANT should be (almost) fully recovered: {correct}/{decided}"
        );
    }

    #[test]
    fn abstains_on_mux_locking() {
        let n = SynthConfig::new("m", 12, 6, 200).generate(4);
        let locked = dmux::lock(&n, &LockOptions::new(8, 6)).unwrap();
        let guess = sail_lite_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        assert!(guess.iter().all(|v| *v == KeyValue::X));
    }
}
