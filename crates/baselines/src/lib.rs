//! # muxlink-attack-baselines
//!
//! The prior oracle-less attacks the paper compares against — all of which
//! fail on D-MUX and symmetric MUX locking, motivating MuxLink:
//!
//! * **SCOPE** (Alaql et al., TVLSI 2021) — unsupervised constant
//!   propagation: hard-code each key bit both ways, re-synthesise, and read
//!   the key from synthesis-report feature differences — [`scope`].
//! * **SWEEP** (Alaql et al., AsianHOST 2019) — the supervised variant: a
//!   linear model over the same per-bit feature deltas, trained on locked
//!   designs with known keys — [`sweep`].
//! * **SAAM** (Sisejkovic et al.) — structural analysis against *naive*
//!   MUX locking: a MUX data wire that would dangle when deselected must
//!   be the true wire — [`saam`].
//!
//! The re-synthesis step is [`muxlink_netlist::opt::resynthesize`] (a
//! fixed recipe over the [`muxlink_netlist::passes`] rewrite framework —
//! constant folding, buffer collapse, MUX simplification and dead-logic
//! removal in one combined sweep); the
//! feature vector is [`muxlink_netlist::stats::NetlistStats`] (gate count,
//! literals, area, depth, switching-activity power proxy, per-type
//! counts) — the proxies for the commercial-tool report columns the
//! original attacks consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod omla;
pub mod resynth;
pub mod saam;
pub mod sail;
pub mod scope;
pub mod sweep;

pub use omla::{omla_attack, OmlaConfig, OmlaError};
pub use resynth::{key_bit_features, KeyBitFeatures};
pub use saam::saam_attack;
pub use sail::sail_lite_attack;
pub use scope::{scope_attack, ScopeConfig};
pub use sweep::{SweepConfig, SweepModel};
