//! SAAM: structural analysis attack on MUX-based locking.
//!
//! SAAM inspects each key MUX's two data wires. A wire whose *only* reader
//! is the MUX itself would dangle (stranding its whole logic cone) if the
//! key deselected it — since sane designs contain no dead logic, such a
//! wire must be the **true** input, revealing the key bit. Naive MUX
//! locking frequently creates this give-away; D-MUX and symmetric locking
//! are built so that every data wire always has another reader, forcing
//! SAAM to abstain on every bit.

use muxlink_locking::KeyValue;
use muxlink_netlist::{GateType, Netlist, NetlistError};

/// Runs SAAM; returns one [`KeyValue`] per entry of `key_inputs` (in
/// order). Bits whose MUX shows no dangling wire are `X`.
///
/// # Errors
///
/// [`NetlistError::UnknownNet`] when a key input does not exist. A key
/// input that does not drive a MUX select yields `X` (SAAM only reasons
/// about MUX key-gates).
pub fn saam_attack(locked: &Netlist, key_inputs: &[String]) -> Result<Vec<KeyValue>, NetlistError> {
    let mut out = Vec::with_capacity(key_inputs.len());
    let output_nets: std::collections::HashSet<_> = locked.outputs().iter().copied().collect();
    for name in key_inputs {
        let key_net = locked
            .find_net(name)
            .ok_or_else(|| NetlistError::UnknownNet(name.clone()))?;
        // Find the MUX(es) selected by this key bit.
        let mut decision = KeyValue::X;
        for (_, gate) in locked.gates() {
            if gate.ty() != GateType::Mux || gate.inputs()[0] != key_net {
                continue;
            }
            let (in0, in1) = (gate.inputs()[1], gate.inputs()[2]);
            // A wire dangles when deselected iff the MUX is its only
            // reader and it is not a primary output.
            let dangles = |net| locked.fanout_count(net) == 1 && !output_nets.contains(&net);
            let d0 = dangles(in0);
            let d1 = dangles(in1);
            let this = match (d0, d1) {
                (true, false) => KeyValue::Zero, // in0 must stay connected
                (false, true) => KeyValue::One,
                _ => KeyValue::X,
            };
            // Multiple MUXes on one key bit (S4): keep any decided value;
            // conflicting decisions fall back to X.
            decision = match (decision, this) {
                (KeyValue::X, v) => v,
                (v, KeyValue::X) => v,
                (a, b) if a == b => a,
                _ => KeyValue::X,
            };
        }
        out.push(decision);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, naive_mux, symmetric, LockOptions};

    #[test]
    fn saam_breaks_naive_mux_locking() {
        let design = SynthConfig::new("d", 16, 8, 300).generate(8);
        let locked = naive_mux::lock(&design, &LockOptions::new(24, 4)).unwrap();
        let guess = saam_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        let decided: Vec<_> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided
            .iter()
            .filter(|(i, b)| *b == locked.key.bit(*i))
            .count();
        assert!(
            !decided.is_empty(),
            "naive MUX locking must expose dangling true wires"
        );
        assert_eq!(
            correct,
            decided.len(),
            "every SAAM decision is provably correct"
        );
    }

    #[test]
    fn saam_abstains_on_dmux() {
        let design = SynthConfig::new("d", 16, 8, 300).generate(9);
        let locked = dmux::lock(&design, &LockOptions::new(16, 5)).unwrap();
        let guess = saam_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        assert!(
            guess.iter().all(|v| *v == KeyValue::X),
            "D-MUX guarantees no dangling wires"
        );
    }

    #[test]
    fn saam_abstains_on_symmetric() {
        let design = SynthConfig::new("d", 16, 8, 300).generate(10);
        let locked = symmetric::lock(&design, &LockOptions::new(16, 5)).unwrap();
        let guess = saam_attack(&locked.netlist, &locked.key_input_names()).unwrap();
        assert!(guess.iter().all(|v| *v == KeyValue::X));
    }

    #[test]
    fn unknown_key_input_rejected() {
        let design = SynthConfig::new("d", 8, 4, 60).generate(11);
        assert!(saam_attack(&design, &["ghost".to_owned()]).is_err());
    }
}
