//! Per-key-bit constant-propagation features shared by SWEEP and SCOPE.
//!
//! Each cofactor is produced by [`muxlink_netlist::opt::resynthesize`],
//! which since the pass-framework refactor is a thin pinned recipe over
//! [`muxlink_netlist::passes`] (the combined `resynth_fold` sweep plus
//! dead-logic stripping). The recipe is bit-compatible with the historical
//! monolithic sweep, so the feature deltas these attacks consume are
//! unchanged.

use std::collections::HashMap;

use muxlink_netlist::stats::NetlistStats;
use muxlink_netlist::{Netlist, NetlistError};
use serde::{Deserialize, Serialize};

/// The features of both cofactors of one key bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyBitFeatures {
    /// Key-input net name.
    pub key_input: String,
    /// Feature vector of the design re-synthesised with the bit tied to 0.
    pub f0: Vec<f64>,
    /// Feature vector with the bit tied to 1.
    pub f1: Vec<f64>,
}

impl KeyBitFeatures {
    /// Signed delta `f0 − f1` — the signal the attacks correlate with the
    /// key value.
    #[must_use]
    pub fn delta(&self) -> Vec<f64> {
        self.f0.iter().zip(&self.f1).map(|(a, b)| a - b).collect()
    }

    /// L1 magnitude of the delta (0 ⇒ the bit leaks nothing through
    /// constant propagation).
    #[must_use]
    pub fn delta_magnitude(&self) -> f64 {
        self.delta().iter().map(|d| d.abs()).sum()
    }
}

/// Hard-codes `key_input` to 0 and to 1 (one bit at a time, as SWEEP and
/// SCOPE do), re-synthesises both cofactors and extracts their features.
///
/// # Errors
///
/// Propagates unknown-net and loop errors from the netlist layer.
pub fn key_bit_features(locked: &Netlist, key_input: &str) -> Result<KeyBitFeatures, NetlistError> {
    let mut features = Vec::with_capacity(2);
    for v in [false, true] {
        let mut constants = HashMap::new();
        constants.insert(key_input.to_owned(), v);
        let re = muxlink_netlist::opt::resynthesize(locked, &constants)?;
        features.push(NetlistStats::compute(&re)?.feature_vector());
    }
    let f1 = features.pop().expect("two cofactors");
    let f0 = features.pop().expect("two cofactors");
    Ok(KeyBitFeatures {
        key_input: key_input.to_owned(),
        f0,
        f1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, xor, LockOptions};

    #[test]
    fn xor_locking_leaks_through_deltas() {
        // Hard-coding an XOR key bit the right way folds the key gate to a
        // wire; the wrong way leaves an inverter — a visible delta.
        let design = SynthConfig::new("d", 12, 6, 150).generate(1);
        let locked = xor::lock(&design, &LockOptions::new(8, 2)).unwrap();
        let mut leaking = 0;
        for name in locked.key_input_names() {
            let f = key_bit_features(&locked.netlist, &name).unwrap();
            if f.delta_magnitude() > 1e-9 {
                leaking += 1;
            }
        }
        assert!(
            leaking >= 6,
            "XOR locking should leak on most bits, got {leaking}"
        );
    }

    #[test]
    fn dmux_deltas_do_not_predict_the_key() {
        // The D-MUX guarantee is not that cofactors are *identical* (the
        // optimiser may fold a couple of gates either way) but that the
        // differences carry no key information: predicting each bit from
        // "the smaller cofactor is correct" must be a coin flip, and the
        // deltas stay tiny relative to the design.
        let design = SynthConfig::new("d", 16, 8, 300).generate(2);
        let locked = dmux::lock(&design, &LockOptions::new(16, 3)).unwrap();
        let mut rule_correct = 0usize;
        let mut rule_decided = 0usize;
        let mut delta_total = 0.0f64;
        for (bit, name) in locked.key_input_names().iter().enumerate() {
            let f = key_bit_features(&locked.netlist, name).unwrap();
            let d = f.delta()[0]; // gate-count delta (f0 − f1)
            delta_total += d.abs();
            if d != 0.0 {
                rule_decided += 1;
                // d < 0 ⇒ cofactor-0 smaller ⇒ rule predicts bit = 0.
                let predicted = d > 0.0;
                if predicted == locked.key.bit(bit) {
                    rule_correct += 1;
                }
            }
        }
        let per_bit = delta_total / 16.0;
        assert!(per_bit <= 2.0, "deltas should stay local, avg {per_bit}");
        if rule_decided >= 6 {
            assert!(
                rule_correct * 10 >= rule_decided * 2 && rule_correct * 10 <= rule_decided * 8,
                "gate-count rule should be uninformative: {rule_correct}/{rule_decided}"
            );
        }
    }

    #[test]
    fn unknown_key_input_rejected() {
        let design = SynthConfig::new("d", 8, 4, 60).generate(3);
        assert!(key_bit_features(&design, "missing").is_err());
    }
}
