//! OMLA: an oracle-less GNN attack on XOR/XNOR locking (Alrahis et al.,
//! IEEE TCAS-II 2021) — the strongest of the "existing ML-based attacks"
//! the paper contrasts MuxLink against.
//!
//! OMLA frames key recovery as **key-gate classification**: extract the
//! h-hop enclosing subgraph around every key gate and let a GNN predict
//! the key bit. Training data comes from **self-referencing re-locking**:
//! the attacker inserts additional XOR/XNOR key gates with *known* random
//! bits into the (already locked) target and trains on those, so the
//! model learns exactly the local structures this design family produces.
//!
//! The reproduction reuses the workspace's graph substrate
//! (key-gate-centric [`muxlink_graph::subgraph::node_subgraph`]) and the
//! same DGCNN as MuxLink. Crucially — and this is the paper's point — the
//! attack *cannot* touch D-MUX/S5 designs: they contain no XOR/XNOR key
//! gates, so [`omla_attack`] returns [`OmlaError::NoXorKeyGates`].

use std::collections::HashMap;
use std::fmt;

use muxlink_gnn::{Dgcnn, DgcnnConfig, GraphSample, NodeFeatures, TrainConfig};
use muxlink_graph::features::{feature_cols, one_hot_features};
use muxlink_graph::graph::{CircuitGraph, Link};
use muxlink_graph::subgraph::node_subgraph;
use muxlink_locking::{xor, KeyValue, LockOptions};
use muxlink_netlist::{GateId, GateType, Netlist};
use serde::{Deserialize, Serialize};

/// OMLA configuration (CPU-friendly defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OmlaConfig {
    /// Enclosing-subgraph hop count.
    pub h: usize,
    /// Number of self-referencing training key gates to insert.
    pub train_key_gates: usize,
    /// Subgraph node cap.
    pub max_subgraph_nodes: Option<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Abstention margin around 0.5.
    pub margin: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for OmlaConfig {
    fn default() -> Self {
        Self {
            h: 3,
            train_key_gates: 64,
            max_subgraph_nodes: Some(128),
            epochs: 30,
            learning_rate: 1e-3,
            margin: 0.05,
            seed: 0,
        }
    }
}

/// Errors raised by the OMLA pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OmlaError {
    /// A named key input does not exist.
    UnknownKeyInput(String),
    /// The design has no XOR/XNOR key gates (e.g. it is MUX-locked) —
    /// OMLA is not applicable, exactly as the MuxLink paper argues.
    NoXorKeyGates,
    /// Re-locking for training data failed (design exhausted).
    Relock(String),
}

impl fmt::Display for OmlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownKeyInput(k) => write!(f, "unknown key input `{k}`"),
            Self::NoXorKeyGates => {
                write!(f, "no XOR/XNOR key gates found — OMLA is not applicable")
            }
            Self::Relock(e) => write!(f, "training re-lock failed: {e}"),
        }
    }
}

impl std::error::Error for OmlaError {}

/// A gate graph that *keeps* the XOR/XNOR key gates as nodes (key inputs
/// themselves are excluded, like all primary inputs).
fn xor_gate_graph(netlist: &Netlist, key_names: &[String]) -> Result<XorGraph, OmlaError> {
    let mut key_nets = HashMap::new();
    for (bit, name) in key_names.iter().enumerate() {
        let id = netlist
            .find_net(name)
            .ok_or_else(|| OmlaError::UnknownKeyInput(name.clone()))?;
        key_nets.insert(id, bit);
    }
    let mut gate_of_node = Vec::new();
    let mut gate_types = Vec::new();
    let mut node_of_gate: HashMap<GateId, u32> = HashMap::new();
    for (gid, gate) in netlist.gates() {
        node_of_gate.insert(gid, gate_of_node.len() as u32);
        gate_of_node.push(gid);
        gate_types.push(gate.ty());
    }
    let mut key_gate_nodes = Vec::new();
    let mut edges = Vec::new();
    for (gid, gate) in netlist.gates() {
        let a = node_of_gate[&gid];
        for &inp in gate.inputs() {
            if let Some(&bit) = key_nets.get(&inp) {
                if matches!(gate.ty(), GateType::Xor | GateType::Xnor) {
                    key_gate_nodes.push((a, bit));
                }
                continue; // key nets are not graph nodes
            }
            if let Some(drv) = netlist.net(inp).driver() {
                edges.push(Link::new(node_of_gate[&drv], a));
            }
        }
    }
    if key_gate_nodes.is_empty() {
        return Err(OmlaError::NoXorKeyGates);
    }
    key_gate_nodes.sort_by_key(|&(_, bit)| bit);
    Ok(XorGraph {
        graph: CircuitGraph::from_edges(gate_of_node, gate_types, &edges),
        key_gate_nodes,
    })
}

struct XorGraph {
    graph: CircuitGraph,
    key_gate_nodes: Vec<(u32, usize)>,
}

/// Runs OMLA on an XOR/XNOR-locked netlist; returns one [`KeyValue`] per
/// entry of `key_names`.
///
/// # Errors
///
/// [`OmlaError::NoXorKeyGates`] on MUX-locked designs, plus extraction
/// and re-locking failures.
pub fn omla_attack(
    locked: &Netlist,
    key_names: &[String],
    cfg: &OmlaConfig,
) -> Result<Vec<KeyValue>, OmlaError> {
    // 0. Applicability: the *target* key inputs must drive XOR/XNOR key
    //    gates. MUX-locked designs fail here — before any re-locking —
    //    which is the paper's "not applicable to D-MUX/S5" observation.
    xor_gate_graph(locked, key_names)?;

    // 1. Self-referencing training set: re-lock the target with known key
    //    gates under a non-clashing prefix.
    let relocked = xor::lock_named(
        locked,
        &LockOptions::new(cfg.train_key_gates, cfg.seed ^ 0x0917_4C3A),
        "omla_train",
    )
    .map_err(|e| OmlaError::Relock(e.to_string()))?;
    let train_names = relocked.key_input_names();
    let mut all_names: Vec<String> = key_names.to_vec();
    all_names.extend(train_names.iter().cloned());
    let xg = xor_gate_graph(&relocked.netlist, &all_names)?;

    // Split key-gate nodes into target (unknown) and training (known).
    let target_count = key_names.len();
    let mut train_samples = Vec::new();
    let mut max_label = 1u32;
    let mut subgraphs = Vec::new();
    for &(node, bit) in &xg.key_gate_nodes {
        let sg = node_subgraph(&xg.graph, node, cfg.h, cfg.max_subgraph_nodes);
        max_label = max_label.max(sg.max_label());
        subgraphs.push((sg, bit));
    }
    for (sg, bit) in &subgraphs {
        if *bit >= target_count {
            train_samples.push(GraphSample {
                adj: sg.adj.clone(),
                features: NodeFeatures::OneHot(one_hot_features(sg, max_label)),
                label: Some(relocked.key.bit(*bit - target_count)),
            });
        }
    }
    if train_samples.is_empty() {
        return Err(OmlaError::Relock("no training key gates placed".into()));
    }

    // 2. Train the DGCNN on the known gates (10% validation split).
    let val_len = (train_samples.len() / 10)
        .max(1)
        .min(train_samples.len() - 1);
    let val = train_samples.split_off(train_samples.len() - val_len);
    let mut model_cfg = DgcnnConfig::paper(feature_cols(max_label), 10);
    let sizes: Vec<usize> = train_samples.iter().map(GraphSample::node_count).collect();
    let mut sorted = sizes.clone();
    sorted.sort_unstable();
    if !sorted.is_empty() {
        model_cfg.k = sorted[(sorted.len() * 6 / 10).min(sorted.len() - 1)].max(model_cfg.min_k());
    }
    model_cfg.seed = cfg.seed ^ 0x0BAD_C0DE;
    let mut model = Dgcnn::new(model_cfg);
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        batch_size: 16,
        adam: muxlink_gnn::AdamConfig {
            lr: cfg.learning_rate,
            ..muxlink_gnn::AdamConfig::default()
        },
        seed: cfg.seed ^ 0x7EA,
        ..TrainConfig::default()
    };
    muxlink_gnn::train(&mut model, &train_samples, &val, &train_cfg);

    // 3. Classify the target key gates.
    let mut out = vec![KeyValue::X; target_count];
    for (sg, bit) in &subgraphs {
        if *bit >= target_count {
            continue;
        }
        let sample = GraphSample {
            adj: sg.adj.clone(),
            features: NodeFeatures::OneHot(one_hot_features(sg, max_label)),
            label: None,
        };
        let p = f64::from(model.predict(&sample));
        out[*bit] = if (p - 0.5).abs() < cfg.margin {
            KeyValue::X
        } else {
            KeyValue::from_bool(p > 0.5)
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, xor};

    fn quick_cfg() -> OmlaConfig {
        OmlaConfig {
            h: 2,
            train_key_gates: 96,
            max_subgraph_nodes: Some(64),
            epochs: 60,
            learning_rate: 2e-3,
            margin: 0.02,
            seed: 1,
        }
    }

    #[test]
    fn omla_breaks_plain_xor_locking() {
        let design = SynthConfig::new("m", 16, 8, 400).generate(2);
        let locked = xor::lock(&design, &LockOptions::new(16, 3)).unwrap();
        let guess = omla_attack(&locked.netlist, &locked.key_input_names(), &quick_cfg()).unwrap();
        let decided: Vec<_> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided
            .iter()
            .filter(|(i, b)| *b == locked.key.bit(*i))
            .count();
        assert!(decided.len() >= 12);
        assert!(
            correct * 10 >= decided.len() * 8,
            "OMLA should break naive XOR locking: {correct}/{}",
            decided.len()
        );
    }

    #[test]
    fn omla_not_applicable_to_dmux() {
        // The MuxLink paper's motivation: the ML attacks on XOR locking
        // have nothing to grab onto in a MUX-locked design.
        let design = SynthConfig::new("m", 12, 6, 200).generate(4);
        let locked = dmux::lock(&design, &LockOptions::new(8, 5)).unwrap();
        let err =
            omla_attack(&locked.netlist, &locked.key_input_names(), &quick_cfg()).unwrap_err();
        assert!(matches!(err, OmlaError::NoXorKeyGates));
    }

    #[test]
    fn unknown_key_input_rejected() {
        let design = SynthConfig::new("m", 12, 6, 200).generate(5);
        let locked = xor::lock(&design, &LockOptions::new(4, 6)).unwrap();
        let err = omla_attack(&locked.netlist, &["ghost".into()], &quick_cfg()).unwrap_err();
        assert!(matches!(err, OmlaError::UnknownKeyInput(_)));
    }
}
