//! SCOPE: synthesis-based constant-propagation attack (unsupervised).
//!
//! For every key bit, SCOPE hard-codes the bit to 0 and to 1,
//! re-synthesises, and compares design features. If one cofactor
//! optimises to a *simpler* design (fewer gates/literals/area), the
//! corresponding key value is predicted — the intuition being that the
//! correct constant lets the synthesis tool fold the key logic away.
//! When the two cofactors are indistinguishable the bit is reported `X`.
//!
//! Against D-MUX/S5 the defenses guarantee indistinguishable cofactors,
//! which is exactly the ≈50 % KPA resilience shown in the paper's Fig. 2.

use muxlink_locking::KeyValue;
use muxlink_netlist::{Netlist, NetlistError};
use serde::{Deserialize, Serialize};

use crate::resynth::key_bit_features;

/// SCOPE tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeConfig {
    /// Minimum absolute weighted-score difference to make a decision.
    pub decision_eps: f64,
    /// Feature weights (same layout as
    /// [`muxlink_netlist::stats::NetlistStats::feature_vector`]); the
    /// default emphasises gate count, literals and area.
    pub weights: Vec<f64>,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        Self {
            decision_eps: 1e-6,
            // [gates, literals, area, depth, switching, 8 × per-type]
            weights: vec![
                1.0, 0.5, 0.8, 0.1, 0.2, //
                0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1,
            ],
        }
    }
}

/// Runs SCOPE on a locked netlist; returns one [`KeyValue`] per entry of
/// `key_inputs`.
///
/// # Errors
///
/// Propagates netlist errors from re-synthesis.
pub fn scope_attack(
    locked: &Netlist,
    key_inputs: &[String],
    cfg: &ScopeConfig,
) -> Result<Vec<KeyValue>, NetlistError> {
    let mut out = Vec::with_capacity(key_inputs.len());
    for name in key_inputs {
        let f = key_bit_features(locked, name)?;
        let score0 = weighted(&f.f0, &cfg.weights);
        let score1 = weighted(&f.f1, &cfg.weights);
        let v = if (score0 - score1).abs() < cfg.decision_eps {
            KeyValue::X
        } else if score0 < score1 {
            // Tying the bit to 0 gave the simpler design ⇒ predict 0.
            KeyValue::Zero
        } else {
            KeyValue::One
        };
        out.push(v);
    }
    Ok(out)
}

fn weighted(features: &[f64], weights: &[f64]) -> f64 {
    features.iter().zip(weights).map(|(f, w)| f * w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, symmetric, xor, LockOptions};

    #[test]
    fn scope_breaks_xor_locking() {
        let design = SynthConfig::new("d", 14, 6, 200).generate(4);
        // Lock-site seed picked so the XOR key gates land on nets SCOPE's
        // constant propagation can decide; the property (high KPA on XOR
        // locking) holds across most seeds, this pins a representative one
        // for the vendored RNG stream.
        let locked = xor::lock(&design, &LockOptions::new(12, 1)).unwrap();
        let guess = scope_attack(
            &locked.netlist,
            &locked.key_input_names(),
            &ScopeConfig::default(),
        )
        .unwrap();
        let correct = guess
            .iter()
            .enumerate()
            .filter(|(i, v)| v.as_bool() == Some(locked.key.bit(*i)))
            .count();
        let decided = guess.iter().filter(|v| v.as_bool().is_some()).count();
        assert!(
            decided >= 8,
            "XOR locking should be decidable, got {decided}"
        );
        assert!(
            correct * 10 >= decided * 8,
            "KPA on XOR locking should be high: {correct}/{decided}"
        );
    }

    #[test]
    fn scope_blind_on_dmux() {
        let design = SynthConfig::new("d", 16, 8, 300).generate(5);
        let locked = dmux::lock(&design, &LockOptions::new(16, 7)).unwrap();
        let guess = scope_attack(
            &locked.netlist,
            &locked.key_input_names(),
            &ScopeConfig::default(),
        )
        .unwrap();
        // Resilience: the decided bits (if any) are essentially coin flips
        // and most bits are undecidable.
        let decided: Vec<(usize, bool)> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided
            .iter()
            .filter(|(i, b)| *b == locked.key.bit(*i))
            .count();
        assert!(
            decided.len() <= 6 || correct * 10 <= decided.len() * 8,
            "SCOPE should not break D-MUX: {} decided, {} correct",
            decided.len(),
            correct
        );
    }

    #[test]
    fn scope_blind_on_symmetric() {
        let design = SynthConfig::new("d", 16, 8, 300).generate(6);
        let locked = symmetric::lock(&design, &LockOptions::new(16, 7)).unwrap();
        let guess = scope_attack(
            &locked.netlist,
            &locked.key_input_names(),
            &ScopeConfig::default(),
        )
        .unwrap();
        // The cofactors stay the same size; any decisions ride on noise in
        // the soft features (switching activity), so the hit rate is a
        // coin flip — the paper's "KPA ≈ 50%" resilience.
        let decided: Vec<(usize, bool)> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided
            .iter()
            .filter(|(i, b)| *b == locked.key.bit(*i))
            .count();
        if decided.len() >= 4 {
            let kpa = correct as f64 / decided.len() as f64;
            assert!(
                (0.15..=0.85).contains(&kpa),
                "SCOPE KPA on symmetric locking should be near 50%, got {kpa}"
            );
        }
    }
}
