//! SWEEP: the supervised constant-propagation attack.
//!
//! SWEEP trains on locked designs with *known* keys (the attacker locks
//! circuits herself): for every key bit it extracts the same cofactor
//! feature deltas as SCOPE and fits a linear model mapping delta → key
//! value. At attack time a margin around 0.5 yields `X` abstentions.

use muxlink_locking::KeyValue;
use muxlink_netlist::{Netlist, NetlistError};
use serde::{Deserialize, Serialize};

use crate::resynth::key_bit_features;

/// SWEEP training/inference settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Abstention margin: predictions with `|p − 0.5| < margin` become `X`.
    pub margin: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 0.05,
            l2: 1e-3,
            margin: 0.05,
        }
    }
}

/// A trained SWEEP model: logistic regression over feature deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepModel {
    weights: Vec<f64>,
    bias: f64,
    margin: f64,
    /// Per-feature scale used to normalise inputs.
    scale: Vec<f64>,
}

impl SweepModel {
    /// Trains on `(delta, key_bit)` pairs gathered from designs with known
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics when `examples` is empty or deltas have inconsistent widths.
    #[must_use]
    pub fn train(examples: &[(Vec<f64>, bool)], cfg: &SweepConfig) -> Self {
        assert!(!examples.is_empty(), "SWEEP needs training examples");
        let dim = examples[0].0.len();
        assert!(examples.iter().all(|(d, _)| d.len() == dim));
        // Normalise features to unit max-abs so the LR is scale-free.
        let mut scale = vec![0.0f64; dim];
        for (d, _) in examples {
            for (s, &v) in scale.iter_mut().zip(d) {
                *s = s.max(v.abs());
            }
        }
        for s in &mut scale {
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        let mut weights = vec![0.0f64; dim];
        let mut bias = 0.0f64;
        for _ in 0..cfg.epochs {
            let mut gw = vec![0.0f64; dim];
            let mut gb = 0.0f64;
            for (d, y) in examples {
                let z: f64 = d
                    .iter()
                    .zip(&weights)
                    .zip(&scale)
                    .map(|((&x, &w), &s)| w * (x / s))
                    .sum::<f64>()
                    + bias;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - f64::from(*y);
                for ((g, &x), &s) in gw.iter_mut().zip(d).zip(&scale) {
                    *g += err * (x / s);
                }
                gb += err;
            }
            let n = examples.len() as f64;
            for (w, g) in weights.iter_mut().zip(&gw) {
                *w -= cfg.lr * (g / n + cfg.l2 * *w);
            }
            bias -= cfg.lr * gb / n;
        }
        Self {
            weights,
            bias,
            margin: cfg.margin,
            scale,
        }
    }

    /// Predicted probability that the key bit is 1.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch with the training data.
    #[must_use]
    pub fn probability(&self, delta: &[f64]) -> f64 {
        assert_eq!(delta.len(), self.weights.len());
        let z: f64 = delta
            .iter()
            .zip(&self.weights)
            .zip(&self.scale)
            .map(|((&x, &w), &s)| w * (x / s))
            .sum::<f64>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Margin-aware prediction.
    #[must_use]
    pub fn predict(&self, delta: &[f64]) -> KeyValue {
        let p = self.probability(delta);
        if (p - 0.5).abs() < self.margin {
            KeyValue::X
        } else if p > 0.5 {
            KeyValue::One
        } else {
            KeyValue::Zero
        }
    }

    /// Attacks every key bit of a locked netlist.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors from re-synthesis.
    pub fn attack(
        &self,
        locked: &Netlist,
        key_inputs: &[String],
    ) -> Result<Vec<KeyValue>, NetlistError> {
        key_inputs
            .iter()
            .map(|name| {
                let f = key_bit_features(locked, name)?;
                Ok(self.predict(&f.delta()))
            })
            .collect()
    }
}

/// Gathers SWEEP training examples from a locked design with a known key.
///
/// # Errors
///
/// Propagates netlist errors from re-synthesis.
pub fn training_examples(
    locked: &Netlist,
    key_inputs: &[String],
    key_bits: &[bool],
) -> Result<Vec<(Vec<f64>, bool)>, NetlistError> {
    assert_eq!(key_inputs.len(), key_bits.len());
    key_inputs
        .iter()
        .zip(key_bits)
        .map(|(name, &bit)| {
            let f = key_bit_features(locked, name)?;
            Ok((f.delta(), bit))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muxlink_benchgen::synth::SynthConfig;
    use muxlink_locking::{dmux, xor, LockOptions};

    fn gather(
        scheme: impl Fn(&muxlink_netlist::Netlist, &LockOptions) -> muxlink_locking::LockedNetlist,
        seeds: std::ops::Range<u64>,
        k: usize,
    ) -> Vec<(Vec<f64>, bool)> {
        let mut ex = Vec::new();
        for seed in seeds {
            let design = SynthConfig::new("t", 12, 6, 150).generate(seed);
            let locked = scheme(&design, &LockOptions::new(k, seed));
            ex.extend(
                training_examples(
                    &locked.netlist,
                    &locked.key_input_names(),
                    locked.key.bits(),
                )
                .unwrap(),
            );
        }
        ex
    }

    #[test]
    fn sweep_learns_xor_leakage() {
        let train = gather(|n, o| xor::lock(n, o).unwrap(), 0..10, 8);
        let model = SweepModel::train(&train, &SweepConfig::default());
        // Fresh test design.
        let design = SynthConfig::new("t", 12, 6, 150).generate(99);
        let locked = xor::lock(&design, &LockOptions::new(16, 99)).unwrap();
        let guess = model
            .attack(&locked.netlist, &locked.key_input_names())
            .unwrap();
        let decided: Vec<_> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided
            .iter()
            .filter(|(i, b)| *b == locked.key.bit(*i))
            .count();
        // A minority of sites resynthesise away the leakage (inserted
        // inverters cancel against existing ones), so demand clearly
        // better-than-random rather than near-perfect recovery.
        assert!(decided.len() >= 10);
        assert!(
            correct * 100 >= decided.len() * 65,
            "SWEEP should beat coin flips on XOR locking: {correct}/{}",
            decided.len()
        );
    }

    #[test]
    fn sweep_near_random_on_dmux() {
        let train = gather(|n, o| dmux::lock(n, o).unwrap(), 0..6, 8);
        let model = SweepModel::train(&train, &SweepConfig::default());
        let design = SynthConfig::new("t", 12, 6, 150).generate(77);
        let locked = dmux::lock(&design, &LockOptions::new(16, 77)).unwrap();
        let guess = model
            .attack(&locked.netlist, &locked.key_input_names())
            .unwrap();
        let decided: Vec<_> = guess
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_bool().map(|b| (i, b)))
            .collect();
        let correct = decided
            .iter()
            .filter(|(i, b)| *b == locked.key.bit(*i))
            .count();
        // Either SWEEP abstains, or its hit rate is near a coin flip.
        if decided.len() >= 4 {
            let kpa = correct as f64 / decided.len() as f64;
            assert!(
                (0.15..=0.85).contains(&kpa),
                "SWEEP KPA on D-MUX should be near 50%, got {kpa}"
            );
        }
    }

    #[test]
    fn model_is_deterministic() {
        let train = gather(|n, o| xor::lock(n, o).unwrap(), 0..3, 4);
        let a = SweepModel::train(&train, &SweepConfig::default());
        let b = SweepModel::train(&train, &SweepConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn margin_controls_abstention() {
        let train = gather(|n, o| xor::lock(n, o).unwrap(), 0..3, 4);
        let strict = SweepModel::train(
            &train,
            &SweepConfig {
                margin: 0.49,
                ..SweepConfig::default()
            },
        );
        // With an extreme margin everything becomes X.
        let design = SynthConfig::new("t", 12, 6, 150).generate(55);
        let locked = xor::lock(&design, &LockOptions::new(4, 55)).unwrap();
        let guess = strict
            .attack(&locked.netlist, &locked.key_input_names())
            .unwrap();
        let x = guess.iter().filter(|v| **v == KeyValue::X).count();
        assert!(x >= 3, "near-0.5 margin should abstain, got {x} X of 4");
    }
}
