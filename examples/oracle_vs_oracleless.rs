//! Threat-model comparison on one D-MUX-locked design:
//!
//! * the **oracle-guided SAT attack** (needs a working chip) — breaks the
//!   lock exactly, in a handful of distinguishing-input queries;
//! * **oracle-less MuxLink** (structure only) — recovers most of the key
//!   with no chip at all, which is the paper's threat model.
//!
//! ```text
//! cargo run --release -p muxlink-examples --example oracle_vs_oracleless
//! ```

use muxlink_core::metrics::score_key;
use muxlink_core::{attack, MuxLinkConfig};
use muxlink_locking::{dmux, KeyValue, LockOptions};
use muxlink_sat::{sat_attack, SatAttackConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = muxlink_benchgen::synth::SynthConfig::new("asic_block", 14, 7, 220).generate(8);
    let locked = dmux::lock(&design, &LockOptions::new(12, 3))?;
    println!(
        "design: {} gates, locked with D-MUX K = {}\n",
        design.gate_count(),
        locked.key.len()
    );

    // Oracle-guided: the attacker bought a working chip.
    let t = std::time::Instant::now();
    let sat = sat_attack(
        &locked.netlist,
        &locked.key_input_names(),
        &design,
        &SatAttackConfig::default(),
    )?;
    println!(
        "SAT attack (oracle-guided): functionally correct = {} after {} DIPs ({:.2?})",
        sat.functionally_correct,
        sat.dip_count,
        t.elapsed()
    );

    // Oracle-less: the attacker is inside the fab, GDSII only.
    let t = std::time::Instant::now();
    let out = attack(
        &locked.netlist,
        &locked.key_input_names(),
        &MuxLinkConfig::quick().with_seed(4),
    )?;
    let m = score_key(&out.guess, &locked.key);
    let decided = out.guess.iter().filter(|v| **v != KeyValue::X).count();
    println!(
        "MuxLink (oracle-less):      AC {:.1}%  PC {:.1}%  ({decided}/{} decided, {:.2?})",
        m.accuracy_pct(),
        m.precision_pct(),
        out.guess.len(),
        t.elapsed()
    );
    println!(
        "\nThe SAT attack is exact but needs hardware; MuxLink needs nothing\n\
         but the layout — the gap the 'learning-resilient' schemes thought\n\
         they had closed."
    );
    Ok(())
}
