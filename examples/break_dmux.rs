//! The full attack story on an ISCAS-85-style benchmark: lock → attack →
//! score → reconstruct → measure output Hamming distance, for both D-MUX
//! and symmetric MUX locking.
//!
//! ```text
//! cargo run --release -p muxlink-examples --example break_dmux
//! ```

use muxlink_core::metrics::{hamming_with_guess, score_key};
use muxlink_core::{attack, MuxLinkConfig};
use muxlink_locking::{dmux, symmetric, KeyValue, LockOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled c1908 stand-in (see DESIGN.md for the substitution note).
    let profile = muxlink_benchgen::SyntheticSuite::iscas85()
        .scaled(0.25)
        .profiles[1]
        .clone();
    let design = profile.generate(3);
    println!(
        "benchmark {} (stand-in): {} gates",
        profile.name,
        design.gate_count()
    );

    let cfg = MuxLinkConfig::quick().with_seed(5);
    for (scheme, locked) in [
        ("D-MUX", dmux::lock(&design, &LockOptions::new(16, 2))?),
        (
            "Symmetric",
            symmetric::lock(&design, &LockOptions::new(16, 2))?,
        ),
    ] {
        println!("\n=== {scheme} ===");
        let outcome = attack(&locked.netlist, &locked.key_input_names(), &cfg)?;
        let m = score_key(&outcome.guess, &locked.key);
        let guessed: String = outcome.guess.iter().map(ToString::to_string).collect();
        println!("  true key:  {}", locked.key);
        println!("  recovered: {guessed}");
        println!(
            "  AC {:.1}%  PC {:.1}%  KPA {}",
            m.accuracy_pct(),
            m.precision_pct(),
            m.kpa_pct()
                .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.1}%"))
        );

        let hd = hamming_with_guess(&design, &locked, &outcome.guess, 10_000, 8, 1)?;
        println!("  output HD of the reconstruction: {hd:.2}% (attacker goal: 0%)");

        let x = outcome.guess.iter().filter(|v| **v == KeyValue::X).count();
        if x > 0 {
            println!("  ({x} undecided bits averaged over their assignments)");
        }
    }
    Ok(())
}
