//! Threshold trade-off study on one design: sweep the post-processing
//! threshold `th` over a trained model (no retraining — the paper's
//! Fig. 9 methodology) and watch precision rise as the attack abstains
//! more, then pick a threshold and reconstruct the design.
//!
//! ```text
//! cargo run --release -p muxlink-examples --example hamming_recovery
//! ```

use muxlink_core::metrics::{hamming_with_guess, score_key};
use muxlink_core::{recover::resolve_x_with, score_design, MuxLinkConfig};
use muxlink_locking::{dmux, KeyValue, LockOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = muxlink_benchgen::synth::SynthConfig::new("soc_block", 18, 9, 400).generate(21);
    let locked = dmux::lock(&design, &LockOptions::new(16, 4))?;
    println!(
        "locked {} gates with K = {}; training one GNN, sweeping th …\n",
        design.gate_count(),
        locked.key.len()
    );

    let cfg = MuxLinkConfig::quick().with_seed(11);
    let scored = score_design(&locked.netlist, &locked.key_input_names(), &cfg)?;

    println!("   th   AC%     PC%     decided");
    for i in 0..=10 {
        let th = f64::from(i) * 0.1;
        let guess = scored.recover_key(th);
        let m = score_key(&guess, &locked.key);
        let decided = guess.iter().filter(|v| **v != KeyValue::X).count();
        println!(
            "  {th:.2}  {:6.2}  {:6.2}  {decided:>2}/{}",
            m.accuracy_pct(),
            m.precision_pct(),
            guess.len()
        );
    }

    // Reconstruct at the paper's default threshold; a pragmatic attacker
    // fills undecided bits with a constant before fabricating a clone.
    let guess = scored.recover_key(0.01);
    let hd_avg = hamming_with_guess(&design, &locked, &guess, 10_000, 8, 0)?;
    let filled = resolve_x_with(&guess, false);
    let clone = muxlink_core::recover::reconstruct(&locked, &filled)?;
    println!(
        "\nreconstruction at th = 0.01: avg HD {hd_avg:.2}%; clone has {} gates",
        clone.gate_count()
    );
    Ok(())
}
