//! Quickstart: lock a small design with D-MUX, break it with MuxLink,
//! score the recovered key.
//!
//! ```text
//! cargo run --release -p muxlink-examples --example quickstart
//! ```

use muxlink_core::{attack, metrics::score_key, AttackReport, MuxLinkConfig};
use muxlink_locking::{dmux, LockOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The victim design: a synthetic 300-gate combinational circuit
    //    (swap in any BENCH file via muxlink_netlist::bench_format::parse).
    let design = muxlink_benchgen::synth::SynthConfig::new("demo", 16, 8, 300).generate(42);
    println!(
        "original design: {} gates, {} inputs, {} outputs",
        design.gate_count(),
        design.inputs().len(),
        design.outputs().len()
    );

    // 2. The defender locks it with D-MUX (eD-MUX policy, K = 16).
    let locked = dmux::lock(&design, &LockOptions::new(16, 7))?;
    println!(
        "locked with D-MUX: K = {}, +{} gates, correct key = {}",
        locked.key.len(),
        locked.gate_overhead(design.gate_count()),
        locked.key
    );

    // 3. The attacker sees only the locked netlist and the key-input
    //    names. MuxLink trains a DGCNN on the design's own wires and
    //    predicts the true MUX connections.
    let cfg = MuxLinkConfig::quick(); // CPU-friendly; ::paper() for full scale
    let outcome = attack(&locked.netlist, &locked.key_input_names(), &cfg)?;

    // 4. Score against the ground truth the defender kept.
    let metrics = score_key(&outcome.guess, &locked.key);
    let report = AttackReport::new(
        "demo",
        "D-MUX",
        &outcome.guess,
        metrics,
        outcome.scored.train_report.best_val_accuracy,
        outcome.scored.timings,
    );
    println!("{report}");
    Ok(())
}
