//! The defender's perspective: lock a design with the two
//! learning-resilient schemes and verify the security properties the
//! papers claim — correct-key equivalence, no circuit reduction under
//! either key value, and resilience against SAAM, SCOPE and SWEEP.
//!
//! ```text
//! cargo run --release -p muxlink-examples --example lock_and_defend
//! ```

use std::collections::HashMap;

use muxlink_attack_baselines::{saam_attack, scope_attack, ScopeConfig};
use muxlink_core::metrics::score_key;
use muxlink_locking::{dmux, naive_mux, symmetric, LockOptions, LockedNetlist};
use muxlink_netlist::{opt, sim, Netlist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = muxlink_benchgen::synth::SynthConfig::new("ip_core", 20, 10, 500).generate(9);
    println!("design: {} gates\n", design.gate_count());

    let dmux_locked = dmux::lock(&design, &LockOptions::new(32, 1))?;
    let sym_locked = symmetric::lock(&design, &LockOptions::new(32, 1))?;
    let naive_locked = naive_mux::lock(&design, &LockOptions::new(32, 1))?;

    for (name, locked) in [
        ("D-MUX", &dmux_locked),
        ("Symmetric", &sym_locked),
        ("Naive MUX", &naive_locked),
    ] {
        println!("=== {name} (K = {}) ===", locked.key.len());
        check_functionality(&design, locked)?;
        check_no_reduction(locked)?;
        check_saam(locked)?;
        check_scope(locked)?;
        println!();
    }
    println!(
        "Naive MUX falls to SAAM; D-MUX and symmetric locking resist all three\n\
         classical attacks — which is precisely why MuxLink attacks the link\n\
         structure instead (see `break_dmux`)."
    );
    Ok(())
}

fn check_functionality(
    design: &Netlist,
    locked: &LockedNetlist,
) -> Result<(), Box<dyn std::error::Error>> {
    let recovered = muxlink_locking::apply_key(locked, &locked.key)?;
    let hd = sim::hamming_distance(design, &recovered, 10_000, 0)?;
    println!(
        "  correct key restores function: HD = {:.3}% over 10k patterns",
        hd.percent()
    );
    Ok(())
}

fn check_no_reduction(locked: &LockedNetlist) -> Result<(), Box<dyn std::error::Error>> {
    // Hard-code key bit 0 both ways and compare cofactor sizes.
    let mut sizes = Vec::new();
    for v in [false, true] {
        let mut c = HashMap::new();
        c.insert("keyinput0".to_owned(), v);
        sizes.push(opt::resynthesize(&locked.netlist, &c)?.gate_count() as i64);
    }
    println!(
        "  cofactor sizes for key bit 0: {} vs {} (Δ = {})",
        sizes[0],
        sizes[1],
        (sizes[0] - sizes[1]).abs()
    );
    Ok(())
}

fn check_saam(locked: &LockedNetlist) -> Result<(), Box<dyn std::error::Error>> {
    let guess = saam_attack(&locked.netlist, &locked.key_input_names())?;
    let m = score_key(&guess, &locked.key);
    println!(
        "  SAAM: {} of {} bits recovered (X on {})",
        m.correct, m.total, m.x_count
    );
    Ok(())
}

fn check_scope(locked: &LockedNetlist) -> Result<(), Box<dyn std::error::Error>> {
    let guess = scope_attack(
        &locked.netlist,
        &locked.key_input_names(),
        &ScopeConfig::default(),
    )?;
    let m = score_key(&guess, &locked.key);
    let kpa = m
        .kpa_pct()
        .map_or_else(|| "n/a (all X)".to_owned(), |v| format!("{v:.1}%"));
    println!(
        "  SCOPE: KPA {kpa} over {} decided bits",
        m.total - m.x_count
    );
    Ok(())
}
