//! Placeholder library target: the runnable content of this package lives
//! in the example targets (`cargo run -p muxlink-examples --example
//! quickstart`).
